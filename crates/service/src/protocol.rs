//! The newline-delimited wire protocol of the compile service.
//!
//! Every request and response is one line of JSON (embedded newlines in
//! QASM sources are JSON-escaped, so framing never breaks). Requests carry
//! a `cmd` discriminator:
//!
//! ```text
//! {"cmd":"submit","qasm":"OPENQASM 2.0;...","seed":0,"machine":"quera","quick":true}
//! {"cmd":"submit","workload":"QFT","seed":3,"priority":9,"id":17}
//! {"cmd":"stats"}
//! {"cmd":"ping"}
//! {"cmd":"shutdown"}
//! ```
//!
//! Responses are `{"ok":true,...}` or `{"ok":false,"error":"..."}`. A
//! submit response embeds the canonical compilation payload under
//! `"result"` (see [`compile_payload`]); because the [`crate::json`]
//! encoder is canonical, that payload is **byte-identical** to the payload
//! an in-process `ParallaxCompiler::compile` call produces for the same
//! circuit, seed, machine, and knobs — the property the end-to-end suite
//! asserts.

use crate::json::{self, Json};
use parallax_circuit::{from_qasm, optimize, Circuit};
use parallax_core::{CompilationResult, CompilerConfig, ParallaxCompiler};
use parallax_graphine::PlacementConfig;
use parallax_hardware::{MachineSpec, StableHasher};

/// How a submit names its circuit: inline QASM text or a Table III
/// workload acronym.
#[derive(Debug, Clone, PartialEq)]
pub enum SubmitSource {
    /// OpenQASM 2.0 source text.
    Qasm(String),
    /// A `parallax-workloads` registry acronym (e.g. `"QFT"`).
    Workload(String),
}

/// A parsed submit request.
#[derive(Debug, Clone, PartialEq)]
pub struct SubmitRequest {
    /// The circuit to compile.
    pub source: SubmitSource,
    /// Seed for every stochastic stage (and workload generation).
    pub seed: u64,
    /// Target machine: `"quera"` (256 sites) or `"atom"` (1225 sites).
    pub machine: String,
    /// Optional AOD row/column override (Fig. 13 knob).
    pub aod_dim: Option<usize>,
    /// Use the fast placement preset (`PlacementConfig::quick`) instead of
    /// the paper-fidelity default.
    pub quick: bool,
    /// Home-return behaviour (Fig. 12 ablation arm).
    pub return_home: bool,
    /// Scheduling priority, 0..=9; higher pops first.
    pub priority: u8,
    /// Optional client-chosen id echoed back in the response, so clients
    /// can assert responses are index-stable.
    pub id: Option<u64>,
}

/// A parsed request line.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Compile a circuit.
    Submit(Box<SubmitRequest>),
    /// Report live service metrics.
    Stats,
    /// Liveness probe.
    Ping,
    /// Drain in-flight work and stop accepting jobs.
    Shutdown,
}

/// Highest accepted priority (inclusive).
pub const MAX_PRIORITY: u8 = 9;
/// Default submit priority.
pub const DEFAULT_PRIORITY: u8 = 5;

/// Parse one request line.
pub fn parse_request(line: &str) -> Result<Request, String> {
    let v = json::parse(line).map_err(|e| e.to_string())?;
    let cmd = v.get("cmd").and_then(Json::as_str).ok_or("missing string field 'cmd'")?;
    match cmd {
        "stats" => Ok(Request::Stats),
        "ping" => Ok(Request::Ping),
        "shutdown" => Ok(Request::Shutdown),
        "submit" => {
            let qasm = v.get("qasm").and_then(Json::as_str);
            let workload = v.get("workload").and_then(Json::as_str);
            let source = match (qasm, workload) {
                (Some(q), None) => SubmitSource::Qasm(q.to_string()),
                (None, Some(w)) => SubmitSource::Workload(w.to_string()),
                (Some(_), Some(_)) => return Err("provide 'qasm' or 'workload', not both".into()),
                (None, None) => return Err("submit needs a 'qasm' or 'workload' field".into()),
            };
            let priority = match v.get("priority") {
                None => DEFAULT_PRIORITY,
                Some(p) => {
                    let p = p.as_u64().ok_or("'priority' must be a non-negative number")?;
                    u8::try_from(p).ok().filter(|p| *p <= MAX_PRIORITY).ok_or_else(|| {
                        format!("'priority' must be in 0..={MAX_PRIORITY}, got {p}")
                    })?
                }
            };
            Ok(Request::Submit(Box::new(SubmitRequest {
                source,
                seed: v.get("seed").and_then(Json::as_u64).unwrap_or(0),
                machine: v.get("machine").and_then(Json::as_str).unwrap_or("quera").to_string(),
                aod_dim: v.get("aod_dim").and_then(Json::as_u64).map(|n| n as usize),
                quick: v.get("quick").and_then(Json::as_bool).unwrap_or(false),
                return_home: v.get("return_home").and_then(Json::as_bool).unwrap_or(true),
                priority,
                id: v.get("id").and_then(Json::as_u64),
            })))
        }
        other => Err(format!("unknown cmd '{other}'")),
    }
}

impl SubmitRequest {
    /// Resolve the target [`MachineSpec`].
    pub fn machine_spec(&self) -> Result<MachineSpec, String> {
        let mut spec = match self.machine.as_str() {
            "quera" => MachineSpec::quera_aquila_256(),
            "atom" => MachineSpec::atom_1225(),
            other => return Err(format!("unknown machine '{other}' (use 'quera' or 'atom')")),
        };
        if let Some(dim) = self.aod_dim {
            if dim == 0 {
                return Err("'aod_dim' must be positive".into());
            }
            spec = spec.with_aod_dim(dim);
        }
        Ok(spec)
    }

    /// Build the [`CompilerConfig`] this submission asks for. Shared by the
    /// server and by tests computing the expected direct-compile result, so
    /// both sides derive the identical configuration.
    pub fn compiler_config(&self) -> CompilerConfig {
        let placement = if self.quick {
            PlacementConfig::quick(self.seed)
        } else {
            PlacementConfig { seed: self.seed, ..Default::default() }
        };
        CompilerConfig {
            seed: self.seed,
            placement,
            return_home: self.return_home,
            ..Default::default()
        }
    }

    /// Build the compiler for this submission.
    pub fn build_compiler(&self) -> Result<ParallaxCompiler, String> {
        Ok(ParallaxCompiler::new(self.machine_spec()?, self.compiler_config()))
    }

    /// Resolve the circuit: parse + lower + peephole-optimize QASM, or
    /// generate the named workload (already optimized by the registry).
    pub fn resolve_circuit(&self) -> Result<Circuit, String> {
        match &self.source {
            SubmitSource::Qasm(text) => {
                let program = parallax_qasm::parse(text).map_err(|e| e.to_string())?;
                let raw = from_qasm(&program).map_err(|e| e.to_string())?;
                Ok(optimize(&raw))
            }
            SubmitSource::Workload(name) => parallax_workloads::benchmark(name)
                .map(|b| b.circuit(self.seed))
                .ok_or_else(|| format!("unknown workload '{name}'")),
        }
    }
}

/// Stable content hash of the exact circuit fed to the compiler: the
/// FNV-1a hash of its canonical QASM rendering. Whitespace and comment
/// differences in submitted text vanish during parsing, so equivalent
/// submissions share a hash.
pub fn circuit_content_hash(circuit: &Circuit) -> u64 {
    parallax_qasm::fnv1a_64(circuit.to_qasm().as_bytes())
}

/// Deterministic digest of the *full* schedule — gate order, per-layer
/// structure, every planned move, AOD selection, and home positions (by
/// f64 bit pattern). Two compilations agree on this digest iff they
/// produced bit-identical schedules, which lets a small response attest to
/// byte-identical compilation without shipping the whole movement plan.
pub fn schedule_digest(result: &CompilationResult) -> u64 {
    let mut h = StableHasher::new();
    h.write_u64(result.machine.fingerprint());
    h.write_f64(result.interaction_radius_um);
    h.write_usize(result.num_qubits);
    for p in &result.home_positions {
        h.write_f64(p.x).write_f64(p.y);
    }
    for q in &result.aod_selection.selected {
        h.write_u64(u64::from(*q));
    }
    h.write_usize(result.schedule.layers.len());
    for layer in &result.schedule.layers {
        h.write_usize(layer.gate_indices.len());
        for &g in &layer.gate_indices {
            h.write_usize(g);
        }
        h.write_usize(layer.moves.len());
        for m in &layer.moves {
            h.write_u64(u64::from(m.q)).write_f64(m.x).write_f64(m.y);
        }
        h.write_usize(layer.trap_changes);
        h.write_f64(layer.move_distance_um);
        h.write_f64(layer.return_distance_um);
    }
    h.finish()
}

/// The canonical compilation payload: every headline metric of the paper's
/// evaluation plus the schedule digest. Pure function of the
/// [`CompilationResult`], so a served response and a direct in-process
/// compile encode byte-identically.
pub fn compile_payload(result: &CompilationResult) -> Json {
    let stats = &result.schedule.stats;
    Json::obj(vec![
        ("qubits", Json::Int(result.num_qubits as u64)),
        ("cz", Json::Int(stats.cz_count as u64)),
        ("u3", Json::Int(stats.u3_count as u64)),
        ("swaps", Json::Int(stats.swap_count as u64)),
        ("layers", Json::Int(stats.layer_count as u64)),
        ("moves", Json::Int(stats.moves_planned as u64)),
        ("trap_changes", Json::Int(stats.trap_changes as u64)),
        ("radius_um", Json::Num(result.interaction_radius_um)),
        ("move_distance_um", Json::Num(stats.total_move_distance_um)),
        (
            "aod",
            Json::Arr(result.aod_selection.selected.iter().map(|&q| Json::Int(q as u64)).collect()),
        ),
        ("digest", Json::Str(format!("{:016x}", schedule_digest(result)))),
    ])
}

/// Encode a request as its wire line (inverse of [`parse_request`]).
pub fn encode_request(request: &Request) -> String {
    match request {
        Request::Stats => "{\"cmd\":\"stats\"}".to_string(),
        Request::Ping => "{\"cmd\":\"ping\"}".to_string(),
        Request::Shutdown => "{\"cmd\":\"shutdown\"}".to_string(),
        Request::Submit(s) => {
            let mut pairs = vec![("cmd", Json::Str("submit".into()))];
            match &s.source {
                SubmitSource::Qasm(text) => pairs.push(("qasm", Json::Str(text.clone()))),
                SubmitSource::Workload(name) => pairs.push(("workload", Json::Str(name.clone()))),
            }
            pairs.push(("seed", Json::Int(s.seed)));
            pairs.push(("machine", Json::Str(s.machine.clone())));
            if let Some(dim) = s.aod_dim {
                pairs.push(("aod_dim", Json::Int(dim as u64)));
            }
            pairs.push(("quick", Json::Bool(s.quick)));
            pairs.push(("return_home", Json::Bool(s.return_home)));
            pairs.push(("priority", Json::Int(u64::from(s.priority))));
            if let Some(id) = s.id {
                pairs.push(("id", Json::Int(id)));
            }
            Json::obj(pairs).encode()
        }
    }
}

impl Default for SubmitRequest {
    fn default() -> Self {
        Self {
            source: SubmitSource::Workload("QFT".into()),
            seed: 0,
            machine: "quera".into(),
            aod_dim: None,
            quick: false,
            return_home: true,
            priority: DEFAULT_PRIORITY,
            id: None,
        }
    }
}

/// `{"ok":false,"error":...}` with the client-supplied id echoed when known.
pub fn error_response(message: &str, id: Option<u64>) -> String {
    let mut pairs = vec![("ok", Json::Bool(false)), ("error", Json::Str(message.to_string()))];
    if let Some(id) = id {
        pairs.push(("id", Json::Int(id)));
    }
    Json::obj(pairs).encode()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn submit(line: &str) -> SubmitRequest {
        match parse_request(line).unwrap() {
            Request::Submit(s) => *s,
            other => panic!("expected submit, got {other:?}"),
        }
    }

    #[test]
    fn parses_control_commands() {
        assert_eq!(parse_request("{\"cmd\":\"ping\"}").unwrap(), Request::Ping);
        assert_eq!(parse_request("{\"cmd\":\"stats\"}").unwrap(), Request::Stats);
        assert_eq!(parse_request("{\"cmd\":\"shutdown\"}").unwrap(), Request::Shutdown);
        assert!(parse_request("{\"cmd\":\"nope\"}").is_err());
        assert!(parse_request("not json").is_err());
        assert!(parse_request("{}").is_err());
    }

    #[test]
    fn submit_defaults_and_overrides() {
        let s = submit("{\"cmd\":\"submit\",\"workload\":\"QFT\"}");
        assert_eq!(s.source, SubmitSource::Workload("QFT".into()));
        assert_eq!(s.seed, 0);
        assert_eq!(s.machine, "quera");
        assert_eq!(s.priority, DEFAULT_PRIORITY);
        assert!(s.return_home);
        assert!(!s.quick);
        assert!(s.id.is_none());

        let s = submit(
            "{\"cmd\":\"submit\",\"qasm\":\"OPENQASM 2.0;\",\"seed\":9,\"machine\":\"atom\",\
             \"quick\":true,\"return_home\":false,\"priority\":9,\"id\":3,\"aod_dim\":7}",
        );
        assert_eq!(s.source, SubmitSource::Qasm("OPENQASM 2.0;".into()));
        assert_eq!(s.seed, 9);
        assert_eq!(s.machine_spec().unwrap().name, "Atom-1225");
        assert_eq!(s.machine_spec().unwrap().aod_dim, 7);
        assert_eq!(s.priority, 9);
        assert_eq!(s.id, Some(3));
        assert!(!s.return_home && s.quick);
    }

    #[test]
    fn submit_validation_errors() {
        assert!(parse_request("{\"cmd\":\"submit\"}").is_err());
        assert!(parse_request("{\"cmd\":\"submit\",\"qasm\":\"x\",\"workload\":\"y\"}").is_err());
        assert!(parse_request("{\"cmd\":\"submit\",\"workload\":\"QFT\",\"priority\":10}").is_err());
        let s = submit("{\"cmd\":\"submit\",\"workload\":\"QFT\",\"machine\":\"ibm\"}");
        assert!(s.machine_spec().is_err());
    }

    #[test]
    fn config_mirrors_request_knobs() {
        let s = submit("{\"cmd\":\"submit\",\"workload\":\"ADD\",\"seed\":4,\"quick\":true}");
        let cfg = s.compiler_config();
        assert_eq!(cfg.seed, 4);
        assert_eq!(cfg.placement.seed, 4);
        assert_eq!(cfg.placement.max_iter, PlacementConfig::quick(4).max_iter);
        let slow = submit("{\"cmd\":\"submit\",\"workload\":\"ADD\",\"seed\":4}");
        assert_eq!(slow.compiler_config().placement.max_iter, PlacementConfig::default().max_iter);
    }

    #[test]
    fn circuit_hash_ignores_formatting_noise() {
        let tidy = "OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[2];\ncreg c[2];\n\
                    h q[0];\ncx q[0],q[1];\n";
        let noisy = "OPENQASM 2.0;\ninclude \"qelib1.inc\";\n\nqreg q[2];\ncreg c[2];\n\
                     h  q[0] ;\ncx q[0] , q[1];\n";
        let c = |text: &str| {
            submit(
                &Json::obj(vec![
                    ("cmd", Json::Str("submit".into())),
                    ("qasm", Json::Str(text.into())),
                ])
                .encode(),
            )
            .resolve_circuit()
            .unwrap()
        };
        assert_eq!(circuit_content_hash(&c(tidy)), circuit_content_hash(&c(noisy)));
    }

    #[test]
    fn payload_and_digest_are_deterministic_and_discriminating() {
        let s = submit("{\"cmd\":\"submit\",\"workload\":\"ADD\",\"seed\":1,\"quick\":true}");
        let circuit = s.resolve_circuit().unwrap();
        let compiler = s.build_compiler().unwrap();
        let a = compiler.compile(&circuit);
        let b = compiler.compile(&circuit);
        assert_eq!(compile_payload(&a).encode(), compile_payload(&b).encode());
        assert_eq!(schedule_digest(&a), schedule_digest(&b));

        let other = submit("{\"cmd\":\"submit\",\"workload\":\"ADD\",\"seed\":2,\"quick\":true}");
        let c = other.build_compiler().unwrap().compile(&other.resolve_circuit().unwrap());
        assert_ne!(schedule_digest(&a), schedule_digest(&c), "seed must steer the digest");
    }

    #[test]
    fn encode_parse_round_trips_every_request() {
        let requests = vec![
            Request::Ping,
            Request::Stats,
            Request::Shutdown,
            Request::Submit(Box::new(SubmitRequest {
                source: SubmitSource::Qasm("OPENQASM 2.0;\nqreg q[1];\n".into()),
                seed: 11,
                machine: "atom".into(),
                aod_dim: Some(12),
                quick: true,
                return_home: false,
                priority: 8,
                id: Some(42),
            })),
            Request::Submit(Box::default()),
        ];
        for r in requests {
            let line = encode_request(&r);
            assert!(!line.contains('\n'), "wire lines must be single-line: {line}");
            assert_eq!(parse_request(&line).unwrap(), r, "{line}");
        }
    }

    #[test]
    fn error_response_shape() {
        assert_eq!(error_response("boom", None), "{\"ok\":false,\"error\":\"boom\"}");
        assert_eq!(error_response("boom", Some(4)), "{\"ok\":false,\"error\":\"boom\",\"id\":4}");
    }
}
