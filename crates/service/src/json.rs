//! Minimal JSON value type, parser, and canonical encoder.
//!
//! The build environment has no registry access, so the wire protocol
//! cannot lean on serde; this module hand-rolls the JSON subset the
//! service needs. Two properties matter beyond correctness:
//!
//! * **Canonical encoding** — objects preserve insertion order and numbers
//!   use Rust's shortest-round-trip float formatting (integers without a
//!   fractional part print bare), so encoding is a pure function of the
//!   value: two [`Json`] trees are byte-identical encoded iff they are
//!   equal. The end-to-end tests exploit this to assert that served
//!   results are *byte-identical* to direct in-process compilations.
//! * **Total parsing** — any line of bytes from the network parses to
//!   either a value or a [`JsonError`], never a panic.

use std::fmt;

/// A JSON value. Object keys keep insertion order (no map reordering), so
/// encode∘parse and parse∘encode are both stable.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-negative integer, kept exact over the full `u64` range (an
    /// `f64` would silently round seeds and ids above 2^53). The parser
    /// produces this variant for unsigned integer literals that fit.
    Int(u64),
    /// Any other JSON number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in insertion order.
    Obj(Vec<(String, Json)>),
}

/// Parse or shape error, with a byte offset for parse failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Human-readable description.
    pub message: String,
    /// Byte offset in the input where parsing failed.
    pub offset: usize,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Build an object from key/value pairs (helper for fluent encoding).
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Field lookup on objects (first match; `None` on other variants).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// String payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric payload, if this is a number (integers lossy above 2^53).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Int(n) => Some(*n as f64),
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// Numeric payload as an exact `u64` (None for negatives, fractions,
    /// and non-numbers).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Int(n) => Some(*n),
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 9.007_199_254_740_992e15 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// Boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Canonical single-line encoding (no whitespace).
    pub fn encode(&self) -> String {
        let mut out = String::new();
        self.encode_into(&mut out);
        out
    }

    fn encode_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Int(n) => {
                use std::fmt::Write as _;
                let _ = write!(out, "{n}");
            }
            Json::Num(n) => encode_number(*n, out),
            Json::Str(s) => encode_string(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.encode_into(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    encode_string(k, out);
                    out.push(':');
                    v.encode_into(out);
                }
                out.push('}');
            }
        }
    }
}

fn encode_number(n: f64, out: &mut String) {
    use std::fmt::Write as _;
    if !n.is_finite() {
        out.push_str("null"); // JSON has no NaN/Inf; the protocol never sends them
    } else if n == n.trunc() && n.abs() < 9.007_199_254_740_992e15 {
        let _ = write!(out, "{}", n as i64);
    } else {
        let _ = write!(out, "{n}");
    }
}

fn encode_string(s: &str, out: &mut String) {
    use std::fmt::Write as _;
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parse one JSON value from `input` (trailing whitespace allowed,
/// trailing garbage rejected).
pub fn parse(input: &str) -> Result<Json, JsonError> {
    let mut p = Parser { bytes: input.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after value"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> JsonError {
        JsonError { message: message.to_string(), offset: self.pos }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut integral = self.pos > start && self.bytes[start] != b'-';
        if self.peek() == Some(b'.') {
            integral = false;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            integral = false;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii digits");
        // Unsigned integer literals stay exact (u64); everything else is f64.
        if integral {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Json::Int(n));
            }
        }
        text.parse::<f64>().map(Json::Num).map_err(|_| self.err("invalid number"))
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            if self.pos + 5 > self.bytes.len() {
                                return Err(self.err("truncated \\u escape"));
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos + 1..self.pos + 5])
                                .map_err(|_| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            // Surrogate pairs are not needed by this protocol;
                            // lone surrogates map to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is &str, so valid).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..]).expect("valid utf8");
                    let c = rest.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_scalars() {
        // encode∘parse is a string-level identity on canonical encodings
        // (an integral f64 like `1e3` re-parses as Int, so value-level
        // identity is deliberately not promised).
        for text in ["null", "true", "false", "0", "-7", "3.25", "1e3", "\"hi\\n\""] {
            let v = parse(text).unwrap();
            let enc = v.encode();
            assert_eq!(parse(&enc).unwrap().encode(), enc, "{text}");
        }
    }

    #[test]
    fn canonical_encoding_is_stable() {
        let v = Json::obj(vec![
            ("b", Json::Num(2.0)),
            ("a", Json::Arr(vec![Json::Num(1.5), Json::Str("x\"y".into())])),
            ("nested", Json::obj(vec![("k", Json::Bool(true))])),
        ]);
        let enc = v.encode();
        assert_eq!(enc, "{\"b\":2,\"a\":[1.5,\"x\\\"y\"],\"nested\":{\"k\":true}}");
        assert_eq!(parse(&enc).unwrap().encode(), enc, "encode∘parse must be identity");
    }

    #[test]
    fn integers_print_bare_and_floats_round_trip() {
        assert_eq!(Json::Num(123.0).encode(), "123");
        assert_eq!(Json::Num(-4.0).encode(), "-4");
        let x = 0.1 + 0.2;
        let re = parse(&Json::Num(x).encode()).unwrap().as_f64().unwrap();
        assert_eq!(re.to_bits(), x.to_bits(), "shortest round-trip must be exact");
    }

    #[test]
    fn u64_integers_survive_beyond_f64_precision() {
        // 2^53 + 1 is the first integer an f64 cannot represent.
        for n in [9007199254740993u64, u64::MAX] {
            let enc = Json::Int(n).encode();
            assert_eq!(enc, n.to_string());
            assert_eq!(parse(&enc).unwrap().as_u64(), Some(n), "{n} must stay exact");
        }
        // A fractional or negative number is not a u64.
        assert_eq!(parse("1.5").unwrap().as_u64(), None);
        assert_eq!(parse("-3").unwrap().as_u64(), None);
    }

    #[test]
    fn multiline_strings_stay_on_one_wire_line() {
        let qasm = "OPENQASM 2.0;\nqreg q[2];\n";
        let enc = Json::Str(qasm.into()).encode();
        assert!(!enc.contains('\n'), "newlines must be escaped: {enc}");
        assert_eq!(parse(&enc).unwrap().as_str().unwrap(), qasm);
    }

    #[test]
    fn object_field_lookup() {
        let v = parse("{\"ok\":true,\"n\":3,\"s\":\"x\"}").unwrap();
        assert_eq!(v.get("ok").and_then(Json::as_bool), Some(true));
        assert_eq!(v.get("n").and_then(Json::as_u64), Some(3));
        assert_eq!(v.get("s").and_then(Json::as_str), Some("x"));
        assert!(v.get("missing").is_none());
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in ["", "{", "[1,", "{\"a\"}", "tru", "1 2", "\"unterminated", "{\"a\":}"] {
            assert!(parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn unicode_escapes_decode() {
        assert_eq!(parse("\"\\u0041\\u00e9\"").unwrap().as_str().unwrap(), "Aé");
    }

    #[test]
    fn whitespace_tolerant_parsing() {
        let v = parse(" { \"a\" : [ 1 , 2 ] , \"b\" : null } ").unwrap();
        assert_eq!(v.encode(), "{\"a\":[1,2],\"b\":null}");
    }
}
