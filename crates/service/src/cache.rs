//! Content-addressed LRU cache of compilation results.
//!
//! Keyed by [`CacheKey`] — the stable circuit content hash plus the
//! (machine, config) fingerprint — so a hit is only possible when the
//! compilation would be bit-identical anyway (the whole pipeline is
//! deterministic per seed). Values are the canonical encoded result
//! payloads, served verbatim on repeat submissions without recompiling.
//!
//! Eviction is least-recently-used via an intrusive doubly-linked list
//! over slab indices: `get`, `insert`, and eviction are all O(1) (plus
//! hashing), so the cache stays off the serving hot path's critical cost.

use std::collections::HashMap;

/// Content address of one compilation: (circuit, machine+config).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// Stable hash of the canonical QASM of the compiled circuit
    /// ([`crate::protocol::circuit_content_hash`]).
    pub circuit: u64,
    /// `ParallaxCompiler::fingerprint()` — machine and every config knob.
    pub compiler: u64,
}

const NIL: usize = usize::MAX;

struct Slot {
    key: CacheKey,
    value: String,
    prev: usize,
    next: usize,
}

/// Bounded LRU map from [`CacheKey`] to encoded result payloads.
pub struct ResultCache {
    map: HashMap<CacheKey, usize>,
    slots: Vec<Slot>,
    free: Vec<usize>,
    /// Most-recently-used slot index.
    head: usize,
    /// Least-recently-used slot index.
    tail: usize,
    capacity: usize,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl ResultCache {
    /// Create a cache holding at most `capacity` results (min 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        Self {
            map: HashMap::with_capacity(capacity),
            slots: Vec::with_capacity(capacity),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            capacity,
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }

    /// Entries currently cached.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Maximum entries.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Lifetime hit count.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lifetime miss count.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Lifetime eviction count.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    fn unlink(&mut self, i: usize) {
        let (prev, next) = (self.slots[i].prev, self.slots[i].next);
        if prev != NIL {
            self.slots[prev].next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.slots[next].prev = prev;
        } else {
            self.tail = prev;
        }
    }

    fn push_front(&mut self, i: usize) {
        self.slots[i].prev = NIL;
        self.slots[i].next = self.head;
        if self.head != NIL {
            self.slots[self.head].prev = i;
        }
        self.head = i;
        if self.tail == NIL {
            self.tail = i;
        }
    }

    /// Look up `key`, marking it most recently used and counting the
    /// hit/miss.
    pub fn get(&mut self, key: &CacheKey) -> Option<String> {
        match self.map.get(key).copied() {
            Some(i) => {
                self.hits += 1;
                self.unlink(i);
                self.push_front(i);
                Some(self.slots[i].value.clone())
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Insert (or refresh) `key`, evicting the least-recently-used entry
    /// when at capacity.
    pub fn insert(&mut self, key: CacheKey, value: String) {
        if let Some(i) = self.map.get(&key).copied() {
            self.slots[i].value = value;
            self.unlink(i);
            self.push_front(i);
            return;
        }
        if self.map.len() >= self.capacity {
            let lru = self.tail;
            debug_assert_ne!(lru, NIL);
            self.unlink(lru);
            self.map.remove(&self.slots[lru].key);
            self.free.push(lru);
            self.evictions += 1;
        }
        let i = match self.free.pop() {
            Some(i) => {
                self.slots[i] = Slot { key, value, prev: NIL, next: NIL };
                i
            }
            None => {
                self.slots.push(Slot { key, value, prev: NIL, next: NIL });
                self.slots.len() - 1
            }
        };
        self.map.insert(key, i);
        self.push_front(i);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(n: u64) -> CacheKey {
        CacheKey { circuit: n, compiler: 1 }
    }

    #[test]
    fn hit_and_miss_accounting() {
        let mut c = ResultCache::new(4);
        assert_eq!(c.get(&key(1)), None);
        c.insert(key(1), "a".into());
        assert_eq!(c.get(&key(1)), Some("a".into()));
        assert_eq!((c.hits(), c.misses()), (1, 1));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn evicts_least_recently_used() {
        let mut c = ResultCache::new(2);
        c.insert(key(1), "a".into());
        c.insert(key(2), "b".into());
        let _ = c.get(&key(1)); // 1 is now MRU; 2 is LRU
        c.insert(key(3), "c".into()); // evicts 2
        assert_eq!(c.get(&key(2)), None);
        assert_eq!(c.get(&key(1)), Some("a".into()));
        assert_eq!(c.get(&key(3)), Some("c".into()));
        assert_eq!(c.evictions(), 1);
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn reinsert_refreshes_value_and_recency() {
        let mut c = ResultCache::new(2);
        c.insert(key(1), "a".into());
        c.insert(key(2), "b".into());
        c.insert(key(1), "a2".into()); // refresh: 2 becomes LRU
        c.insert(key(3), "c".into()); // evicts 2
        assert_eq!(c.get(&key(1)), Some("a2".into()));
        assert_eq!(c.get(&key(2)), None);
    }

    #[test]
    fn distinct_compiler_fingerprints_do_not_collide() {
        let mut c = ResultCache::new(4);
        c.insert(CacheKey { circuit: 1, compiler: 1 }, "m1".into());
        c.insert(CacheKey { circuit: 1, compiler: 2 }, "m2".into());
        assert_eq!(c.get(&CacheKey { circuit: 1, compiler: 1 }), Some("m1".into()));
        assert_eq!(c.get(&CacheKey { circuit: 1, compiler: 2 }), Some("m2".into()));
    }

    #[test]
    fn churn_preserves_capacity_and_list_integrity() {
        let mut c = ResultCache::new(8);
        for i in 0..1000u64 {
            c.insert(key(i), format!("v{i}"));
            if i % 3 == 0 {
                let _ = c.get(&key(i.saturating_sub(4)));
            }
            assert!(c.len() <= 8);
        }
        // The 8 most-recently-touched survive; spot-check the newest.
        assert_eq!(c.get(&key(999)), Some("v999".into()));
        assert_eq!(c.evictions(), 1000 - 8);
    }
}
