//! Content-addressed LRU cache of compilation results.
//!
//! Keyed by [`CacheKey`] — the stable circuit content hash plus the
//! (machine, config) fingerprint — so a hit is only possible when the
//! compilation would be bit-identical anyway (the whole pipeline is
//! deterministic per seed). Values are the canonical encoded result
//! payloads, served verbatim on repeat submissions without recompiling.
//!
//! The budget is **bytes of payload**, not entry count — a 4096-site
//! schedule and a 9-qubit toy differ by orders of magnitude in size, and
//! charging each one slot would let a handful of giants blow the memory
//! envelope while thousands of small results were evicted to make room.
//! Each entry is charged `payload.len().max(1)`; an entry larger than the
//! whole budget warns once per process and is not cached (same discipline
//! as the layout-cache family in `parallax-core`).
//!
//! Eviction is least-recently-used via an intrusive doubly-linked list
//! over slab indices: `get`, `insert`, and eviction are all O(1) (plus
//! hashing), so the cache stays off the serving hot path's critical cost.

use std::collections::HashMap;

/// Content address of one compilation: (circuit, machine+config).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// Stable hash of the canonical QASM of the compiled circuit
    /// ([`crate::protocol::circuit_content_hash`]).
    pub circuit: u64,
    /// `ParallaxCompiler::fingerprint()` — machine and every config knob.
    pub compiler: u64,
}

const NIL: usize = usize::MAX;

struct Slot {
    key: CacheKey,
    value: String,
    prev: usize,
    next: usize,
}

/// Bounded LRU map from [`CacheKey`] to encoded result payloads, budgeted
/// in payload bytes.
pub struct ResultCache {
    map: HashMap<CacheKey, usize>,
    slots: Vec<Slot>,
    free: Vec<usize>,
    /// Most-recently-used slot index.
    head: usize,
    /// Least-recently-used slot index.
    tail: usize,
    /// Maximum total payload bytes (0 disables storage).
    capacity: usize,
    /// Current total payload bytes.
    weight: usize,
    hits: u64,
    misses: u64,
    evictions: u64,
}

/// Bytes one payload is charged (empty payloads still occupy an entry).
fn charge(value: &str) -> usize {
    value.len().max(1)
}

impl ResultCache {
    /// Create a cache holding at most `capacity` bytes of payloads
    /// (0 disables storage).
    pub fn new(capacity: usize) -> Self {
        Self {
            map: HashMap::new(),
            slots: Vec::new(),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            capacity,
            weight: 0,
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }

    /// Entries currently cached.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Maximum total payload bytes (0 = disabled).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current total payload bytes.
    pub fn weight(&self) -> usize {
        self.weight
    }

    /// Lifetime hit count.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lifetime miss count.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Lifetime eviction count.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    fn unlink(&mut self, i: usize) {
        let (prev, next) = (self.slots[i].prev, self.slots[i].next);
        if prev != NIL {
            self.slots[prev].next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.slots[next].prev = prev;
        } else {
            self.tail = prev;
        }
    }

    fn push_front(&mut self, i: usize) {
        self.slots[i].prev = NIL;
        self.slots[i].next = self.head;
        if self.head != NIL {
            self.slots[self.head].prev = i;
        }
        self.head = i;
        if self.tail == NIL {
            self.tail = i;
        }
    }

    /// Drop the least-recently-used entry (callers guarantee non-empty).
    fn evict_lru(&mut self) {
        let lru = self.tail;
        debug_assert_ne!(lru, NIL);
        self.unlink(lru);
        self.map.remove(&self.slots[lru].key);
        self.weight -= charge(&self.slots[lru].value);
        self.slots[lru].value = String::new();
        self.free.push(lru);
        self.evictions += 1;
    }

    /// Look up `key`, marking it most recently used and counting the
    /// hit/miss.
    pub fn get(&mut self, key: &CacheKey) -> Option<String> {
        match self.map.get(key).copied() {
            Some(i) => {
                self.hits += 1;
                self.unlink(i);
                self.push_front(i);
                Some(self.slots[i].value.clone())
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Insert (or refresh) `key`, evicting least-recently-used entries
    /// until the payload's byte charge fits. Disabled at capacity 0; a
    /// payload outweighing the whole budget warns once per process and is
    /// not cached (a refresh that outgrows the budget removes the stale
    /// entry rather than keep serving it).
    pub fn insert(&mut self, key: CacheKey, value: String) {
        if self.capacity == 0 {
            return;
        }
        let weight = charge(&value);
        if weight > self.capacity {
            static OVERSIZED: std::sync::Once = std::sync::Once::new();
            let capacity = self.capacity;
            OVERSIZED.call_once(|| {
                eprintln!(
                    "warning: a {weight}-byte result payload exceeds the whole result-cache \
                     budget ({capacity} bytes) and will not be cached; raise the service \
                     cache capacity to at least the largest expected payload"
                );
            });
            if let Some(i) = self.map.remove(&key) {
                self.unlink(i);
                self.weight -= charge(&self.slots[i].value);
                self.slots[i].value = String::new();
                self.free.push(i);
            }
            return;
        }
        if let Some(i) = self.map.get(&key).copied() {
            self.weight -= charge(&self.slots[i].value);
            self.slots[i].value = value;
            self.weight += weight;
            self.unlink(i);
            self.push_front(i);
            while self.weight > self.capacity {
                self.evict_lru();
            }
            return;
        }
        while self.weight + weight > self.capacity {
            self.evict_lru();
        }
        let i = match self.free.pop() {
            Some(i) => {
                self.slots[i] = Slot { key, value, prev: NIL, next: NIL };
                i
            }
            None => {
                self.slots.push(Slot { key, value, prev: NIL, next: NIL });
                self.slots.len() - 1
            }
        };
        self.weight += weight;
        self.map.insert(key, i);
        self.push_front(i);
    }

    /// Change the byte budget at runtime: shrinking evicts LRU-first down
    /// to the new capacity, `0` disables and clears.
    pub fn set_capacity(&mut self, capacity: usize) {
        self.capacity = capacity;
        if capacity == 0 {
            self.clear();
            return;
        }
        while self.weight > capacity {
            self.evict_lru();
        }
    }

    /// Drop every entry (counters survive; cleared entries are not counted
    /// as evictions — nothing displaced them).
    pub fn clear(&mut self) {
        self.map.clear();
        self.slots.clear();
        self.free.clear();
        self.head = NIL;
        self.tail = NIL;
        self.weight = 0;
    }

    /// Visit every cached entry, most-recently-used first (the disk
    /// persist walk). The callback must not mutate the cache.
    pub fn for_each(&self, mut f: impl FnMut(&CacheKey, &str)) {
        let mut i = self.head;
        while i != NIL {
            f(&self.slots[i].key, &self.slots[i].value);
            i = self.slots[i].next;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(n: u64) -> CacheKey {
        CacheKey { circuit: n, compiler: 1 }
    }

    #[test]
    fn hit_and_miss_accounting() {
        let mut c = ResultCache::new(64);
        assert_eq!(c.get(&key(1)), None);
        c.insert(key(1), "abc".into());
        assert_eq!(c.get(&key(1)), Some("abc".into()));
        assert_eq!((c.hits(), c.misses()), (1, 1));
        assert_eq!(c.len(), 1);
        assert_eq!(c.weight(), 3);
    }

    #[test]
    fn evicts_least_recently_used_by_byte_pressure() {
        // Two 4-byte entries fill the 8-byte budget exactly.
        let mut c = ResultCache::new(8);
        c.insert(key(1), "aaaa".into());
        c.insert(key(2), "bbbb".into());
        assert_eq!(c.weight(), 8);
        let _ = c.get(&key(1)); // 1 is now MRU; 2 is LRU
        c.insert(key(3), "cccc".into()); // evicts 2
        assert_eq!(c.get(&key(2)), None);
        assert_eq!(c.get(&key(1)), Some("aaaa".into()));
        assert_eq!(c.get(&key(3)), Some("cccc".into()));
        assert_eq!(c.evictions(), 1);
        assert_eq!((c.len(), c.weight()), (2, 8));
    }

    #[test]
    fn a_large_payload_displaces_several_small_ones() {
        let mut c = ResultCache::new(8);
        for n in 1..=4u64 {
            c.insert(key(n), "xx".into()); // 4 × 2 bytes
        }
        assert_eq!((c.len(), c.weight()), (4, 8));
        c.insert(key(9), "six_by".into()); // 6 bytes: evicts keys 1..=3
        assert_eq!(c.evictions(), 3);
        assert_eq!((c.len(), c.weight()), (2, 8));
        assert_eq!(c.get(&key(4)), Some("xx".into()));
        assert_eq!(c.get(&key(9)), Some("six_by".into()));
        assert_eq!(c.get(&key(1)), None);
    }

    #[test]
    fn reinsert_refreshes_value_recency_and_weight() {
        let mut c = ResultCache::new(8);
        c.insert(key(1), "aa".into());
        c.insert(key(2), "bb".into());
        c.insert(key(1), "aaaa".into()); // refresh: weight 2→4, 2 becomes LRU
        assert_eq!(c.weight(), 6);
        c.insert(key(3), "cccc".into()); // 6+4 > 8: evicts 2
        assert_eq!(c.get(&key(1)), Some("aaaa".into()));
        assert_eq!(c.get(&key(2)), None);
        assert_eq!(c.weight(), 8);
    }

    #[test]
    fn oversized_payload_is_not_cached_and_drops_stale_entry() {
        let mut c = ResultCache::new(4);
        c.insert(key(1), "ok".into());
        c.insert(key(1), "way too large".into()); // outweighs the budget
        assert_eq!(c.get(&key(1)), None, "stale small value must not survive");
        assert_eq!((c.len(), c.weight(), c.evictions()), (0, 0, 0));
        c.insert(key(2), "much too large".into());
        assert_eq!((c.len(), c.weight()), (0, 0));
    }

    #[test]
    fn zero_capacity_disables_and_set_capacity_resizes() {
        let mut off = ResultCache::new(0);
        off.insert(key(1), "a".into());
        assert_eq!(off.get(&key(1)), None);
        assert_eq!(off.len(), 0);

        let mut c = ResultCache::new(64);
        for n in 0..4u64 {
            c.insert(key(n), "abcd".into());
        }
        let _ = c.get(&key(0)); // 0 becomes MRU
        c.set_capacity(8); // keeps the two most recent: 0 and 3
        assert_eq!((c.len(), c.weight(), c.capacity()), (2, 8, 8));
        assert!(c.get(&key(0)).is_some() && c.get(&key(3)).is_some());
        c.set_capacity(0);
        assert_eq!((c.len(), c.weight()), (0, 0));
        c.set_capacity(16);
        c.insert(key(7), "back".into());
        assert_eq!(c.get(&key(7)), Some("back".into()));
    }

    #[test]
    fn distinct_compiler_fingerprints_do_not_collide() {
        let mut c = ResultCache::new(64);
        c.insert(CacheKey { circuit: 1, compiler: 1 }, "m1".into());
        c.insert(CacheKey { circuit: 1, compiler: 2 }, "m2".into());
        assert_eq!(c.get(&CacheKey { circuit: 1, compiler: 1 }), Some("m1".into()));
        assert_eq!(c.get(&CacheKey { circuit: 1, compiler: 2 }), Some("m2".into()));
    }

    #[test]
    fn for_each_walks_mru_to_lru() {
        let mut c = ResultCache::new(64);
        c.insert(key(1), "a".into());
        c.insert(key(2), "b".into());
        c.insert(key(3), "c".into());
        let _ = c.get(&key(1));
        let mut seen = Vec::new();
        c.for_each(|k, v| seen.push((k.circuit, v.to_string())));
        assert_eq!(
            seen,
            vec![(1, "a".into()), (3, "c".into()), (2, "b".into())],
            "MRU first, LRU last"
        );
    }

    #[test]
    fn churn_preserves_budget_and_list_integrity() {
        // Values of varying size; the invariant under churn is the byte
        // budget, slab reuse, and list consistency — not an entry count.
        let mut c = ResultCache::new(64);
        for i in 0..1000u64 {
            c.insert(key(i), "v".repeat(1 + (i % 13) as usize));
            if i % 3 == 0 {
                let _ = c.get(&key(i.saturating_sub(4)));
            }
            assert!(c.weight() <= 64, "budget respected at i={i}");
            let mut walked = 0;
            c.for_each(|_, _| walked += 1);
            assert_eq!(walked, c.len(), "list consistent at i={i}");
        }
        // The newest entry always survives (its charge fits the budget).
        assert_eq!(c.get(&key(999)), Some("v".repeat(1 + 999 % 13)));
        assert!(c.evictions() > 0);
    }
}
