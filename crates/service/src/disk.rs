//! The service's disk-backed result-cache tier.
//!
//! Wraps the content-addressed [`DiskStore`] from
//! `parallax_core::layout_cache::persist` with the service's key type and
//! observability: every probe and write bumps a
//! `parallax_disk_cache_events_total` counter in the process-wide metrics
//! registry, and the same numbers back the `STATS` `cache.disk`
//! sub-object.
//!
//! The tier is what lets a shard survive restarts warm: the in-memory
//! [`ResultCache`](crate::cache::ResultCache) dies with the process, but
//! every compiled payload was written through here, so the restarted
//! process answers previously-seen keys from disk — checksummed,
//! version-gated, byte-identical — instead of recompiling. Corrupt or
//! truncated files degrade to a miss (and are cleaned up), never an
//! error; the compile path is always a correct fallback.

use crate::cache::CacheKey;
use parallax_core::layout_cache::DiskStore;
use parallax_trace::Counter;
use std::path::Path;

/// A [`DiskStore`] of result payloads plus the counters that make its
/// behaviour observable.
pub struct DiskCache {
    store: DiskStore,
    /// Probes answered from disk.
    pub hits: Counter,
    /// Probes that found no (valid) entry.
    pub misses: Counter,
    /// Payloads durably written.
    pub stores: Counter,
    /// Writes that failed (I/O errors; the response is unaffected).
    pub store_errors: Counter,
}

impl DiskCache {
    /// Open (creating if needed) the disk tier rooted at `dir`.
    pub fn open(dir: impl AsRef<Path>) -> std::io::Result<Self> {
        use std::sync::atomic::{AtomicU64, Ordering};
        static INSTANCE: AtomicU64 = AtomicU64::new(0);
        let instance = INSTANCE.fetch_add(1, Ordering::Relaxed).to_string();
        let event = |event: &str| {
            parallax_trace::counter(
                "parallax_disk_cache_events_total",
                &[("event", event), ("instance", &instance)],
            )
        };
        Ok(Self {
            store: DiskStore::open(dir.as_ref())?,
            hits: event("hit"),
            misses: event("miss"),
            stores: event("store"),
            store_errors: event("store_error"),
        })
    }

    /// Probe the disk tier for `key`. A payload must round-trip the store's
    /// validation *and* be UTF-8 (it was written from a `String`); anything
    /// else is a counted miss.
    pub fn load(&self, key: &CacheKey) -> Option<String> {
        match self.store.load(key.circuit, key.compiler).and_then(|b| String::from_utf8(b).ok()) {
            Some(payload) => {
                self.hits.inc();
                Some(payload)
            }
            None => {
                self.misses.inc();
                None
            }
        }
    }

    /// Durably write `payload` under `key` (write-tmp-fsync-rename). Write
    /// failures are counted, not propagated — the in-memory tier and the
    /// response already have the payload.
    pub fn store(&self, key: &CacheKey, payload: &str) {
        match self.store.store(key.circuit, key.compiler, payload.as_bytes()) {
            Ok(()) => self.stores.inc(),
            Err(_) => self.store_errors.inc(),
        }
    }

    /// Complete entries currently on disk.
    pub fn len(&self) -> usize {
        self.store.len()
    }

    /// Whether the disk tier currently holds no complete entries.
    pub fn is_empty(&self) -> bool {
        self.store.is_empty()
    }

    /// The directory backing this tier.
    pub fn dir(&self) -> &Path {
        self.store.dir()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir()
            .join(format!("parallax-service-disk-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn round_trips_payloads_and_counts_events() {
        let dir = temp_dir("roundtrip");
        let disk = DiskCache::open(&dir).unwrap();
        let key = CacheKey { circuit: 0xAB, compiler: 0xCD };
        assert_eq!(disk.load(&key), None);
        disk.store(&key, "{\"ok\":true}");
        assert_eq!(disk.load(&key).as_deref(), Some("{\"ok\":true}"));
        assert_eq!((disk.hits.get(), disk.misses.get(), disk.stores.get()), (1, 1, 1));
        assert_eq!(disk.len(), 1);

        // A second instance over the same dir — the restart case.
        let reopened = DiskCache::open(&dir).unwrap();
        assert_eq!(reopened.load(&key).as_deref(), Some("{\"ok\":true}"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn non_utf8_payload_is_a_structured_miss() {
        let dir = temp_dir("utf8");
        let disk = DiskCache::open(&dir).unwrap();
        let key = CacheKey { circuit: 1, compiler: 2 };
        // Write invalid UTF-8 through the raw store: the header/checksum
        // validate, but the service layer must still refuse it.
        DiskStore::open(disk.dir())
            .unwrap()
            .store(key.circuit, key.compiler, &[0xFF, 0xFE])
            .unwrap();
        assert_eq!(disk.load(&key), None);
        assert_eq!(disk.misses.get(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
