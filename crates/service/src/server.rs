//! The TCP compile server: accept loop, per-connection request handling,
//! and graceful drain-on-shutdown.
//!
//! Each connection gets a handler thread that processes its requests
//! strictly in order (so responses are index-stable per connection);
//! concurrency comes from many connections feeding the shared worker pool
//! through the bounded priority queue. Submissions whose content address
//! is already cached are answered inline without touching the queue.
//!
//! Shutdown (the `SHUTDOWN` command or [`ServerHandle::shutdown`]) flips
//! the server to draining: new submissions are refused, the queue closes,
//! and the caller blocks until every *accepted* job has compiled and
//! replied — nothing accepted is ever dropped.

use crate::cache::{CacheKey, ResultCache};
use crate::disk::DiskCache;
use crate::json::Json;
use crate::metrics::Metrics;
use crate::protocol::{
    circuit_content_hash, compile_payload, error_response, parse_request, CacheOp, Request,
    SubmitRequest, SweepRequest,
};
use crate::queue::{JobQueue, PushError};
use crate::worker::{effective_workers, spawn_workers, Job, JobOutcome};
use parallax_circuit::{Circuit, CircuitTemplate};
use parallax_core::ParallaxCompiler;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; port 0 picks an ephemeral port.
    pub addr: String,
    /// Worker threads (0 = available CPUs).
    pub workers: usize,
    /// Job queue capacity (backpressure bound).
    pub queue_capacity: usize,
    /// Result cache budget in **payload bytes** (0 disables caching). A
    /// giant schedule is charged what it costs; see [`ResultCache`].
    pub cache_capacity: usize,
    /// Directory for the disk-backed result-cache tier (`None` disables).
    /// Payloads written here survive restarts: a fresh process pointed at
    /// the same directory answers previously-seen keys without
    /// recompiling.
    pub disk_cache_dir: Option<String>,
    /// How long a submission may wait for queue space before it is
    /// rejected with a `queue full` error (0 = reject immediately).
    pub enqueue_timeout_ms: u64,
    /// Hard cap on one request line's length, bytes. An oversized line is
    /// consumed (to resynchronize on the next newline) and answered with a
    /// structured error instead of being buffered without bound — one
    /// hostile connection cannot balloon the server's memory.
    pub max_line_bytes: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_string(),
            workers: 0,
            queue_capacity: 64,
            cache_capacity: 8 * 1024 * 1024,
            disk_cache_dir: None,
            enqueue_timeout_ms: 1000,
            max_line_bytes: 8 * 1024 * 1024,
        }
    }
}

/// State shared between connection handlers and workers.
pub struct ServiceShared {
    /// The bounded priority job queue.
    pub queue: JobQueue<Job>,
    /// Content-addressed result cache (in-memory tier, byte-budgeted).
    pub cache: Mutex<ResultCache>,
    /// Restart-surviving disk tier, when configured. Probed on an
    /// in-memory miss; compiled payloads are written through.
    pub disk: Option<DiskCache>,
    /// Live counters.
    pub metrics: Metrics,
    /// Recent (internal span id → client-supplied trace id) pairs, so the
    /// `TRACE` op can annotate a span tree with the correlation string the
    /// client actually knows. Bounded FIFO; untagged requests (the server
    /// minted the wire id from the span id) need no entry.
    trace_tags: Mutex<std::collections::VecDeque<(u64, String)>>,
}

/// How many client-tagged requests the `TRACE` annotation map remembers —
/// comfortably more than the span ring holds distinct traces.
const TRACE_TAG_CAPACITY: usize = 256;

impl ServiceShared {
    /// Remember that spans tagged with internal id `num` belong to the
    /// client-supplied trace id `tag`.
    fn record_trace_tag(&self, num: u64, tag: &str) {
        let mut tags = self.trace_tags.lock().expect("trace tags lock");
        if tags.len() == TRACE_TAG_CAPACITY {
            tags.pop_front();
        }
        tags.push_back((num, tag.to_string()));
    }

    /// The client-supplied trace id recorded for internal id `num`, if any.
    fn client_trace_tag(&self, num: u64) -> Option<String> {
        let tags = self.trace_tags.lock().expect("trace tags lock");
        tags.iter().rev().find(|(n, _)| *n == num).map(|(_, t)| t.clone())
    }

    /// Cache counters as the `STATS` sub-object. `capacity`/`weight` are
    /// payload bytes; the `disk` sub-object reports the restart-surviving
    /// tier (all-zero `len`/counters when no disk dir is configured, so
    /// the snapshot shape is stable either way).
    fn cache_json(&self) -> Json {
        let c = self.cache.lock().expect("cache lock");
        let disk = match &self.disk {
            Some(d) => Json::obj(vec![
                ("enabled", Json::Bool(true)),
                ("len", Json::Int(d.len() as u64)),
                ("hits", Json::Int(d.hits.get())),
                ("misses", Json::Int(d.misses.get())),
                ("stores", Json::Int(d.stores.get())),
                ("store_errors", Json::Int(d.store_errors.get())),
            ]),
            None => Json::obj(vec![
                ("enabled", Json::Bool(false)),
                ("len", Json::Int(0)),
                ("hits", Json::Int(0)),
                ("misses", Json::Int(0)),
                ("stores", Json::Int(0)),
                ("store_errors", Json::Int(0)),
            ]),
        };
        Json::obj(vec![
            ("len", Json::Int(c.len() as u64)),
            ("capacity", Json::Int(c.capacity() as u64)),
            ("weight", Json::Int(c.weight() as u64)),
            ("hits", Json::Int(c.hits())),
            ("misses", Json::Int(c.misses())),
            ("evictions", Json::Int(c.evictions())),
            ("disk", disk),
        ])
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum DrainPhase {
    Running,
    Draining,
    Drained,
}

struct ServerCore {
    shared: Arc<ServiceShared>,
    /// Whether new *submissions* are accepted. Cleared by `DRAIN` and
    /// shutdown; stats/metrics/admin traffic keeps flowing either way.
    accepting: AtomicBool,
    /// Whether the accept loop should stop taking connections entirely.
    /// Only shutdown sets this — a drained shard still answers its admin
    /// plane on new connections.
    exiting: AtomicBool,
    workers: Mutex<Option<Vec<JoinHandle<()>>>>,
    drain: Mutex<DrainPhase>,
    drained: Condvar,
    addr: SocketAddr,
    enqueue_timeout: Duration,
    max_line_bytes: usize,
    started: Instant,
    /// Set (after the shutdown response has been written to its client)
    /// to release [`ServerHandle::wait_until_drained`]; signalling only
    /// post-write keeps the daemon from exiting before the ack leaves.
    exit_requested: Mutex<bool>,
    exit: Condvar,
}

impl ServerCore {
    /// Drive (or wait for) the graceful drain: refuse new jobs, close the
    /// queue, and block until the workers have finished every accepted job.
    fn drain(&self) {
        let mut phase = self.drain.lock().expect("drain lock");
        match *phase {
            DrainPhase::Drained => {}
            DrainPhase::Draining => {
                while *phase != DrainPhase::Drained {
                    phase = self.drained.wait(phase).expect("drain lock");
                }
            }
            DrainPhase::Running => {
                *phase = DrainPhase::Draining;
                drop(phase);
                self.accepting.store(false, Ordering::SeqCst);
                self.shared.queue.close();
                let workers = self.workers.lock().expect("workers lock").take().unwrap_or_default();
                for w in workers {
                    let _ = w.join();
                }
                *self.drain.lock().expect("drain lock") = DrainPhase::Drained;
                self.drained.notify_all();
            }
        }
    }

    /// Stop the accept loop (connected clients finish their in-flight
    /// request/response; new connections are refused). The final step of
    /// shutdown — never part of a plain `DRAIN`.
    fn stop_accepting_connections(&self) {
        self.exiting.store(true, Ordering::SeqCst);
        // Unblock the accept loop so it observes the flag.
        let _ = TcpStream::connect(self.addr);
    }
}

/// A running compile server. Dropping the handle shuts it down.
pub struct ServerHandle {
    core: Arc<ServerCore>,
    accept_thread: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (with the resolved ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.core.addr
    }

    /// Shared state (queue/cache/metrics), e.g. for tests and embedding.
    pub fn shared(&self) -> &Arc<ServiceShared> {
        &self.core.shared
    }

    /// Gracefully shut down: drain accepted jobs, stop the accept loop,
    /// and join it. Idempotent.
    pub fn shutdown(&mut self) {
        self.core.drain();
        self.core.stop_accepting_connections();
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }

    /// Block until some client initiates shutdown (the `SHUTDOWN`
    /// command) and its acknowledgement has been written back, then finish
    /// the drain and stop — the serve daemon's main loop.
    pub fn wait_until_drained(&mut self) {
        {
            let mut requested = self.core.exit_requested.lock().expect("exit lock");
            while !*requested {
                requested = self.core.exit.wait(requested).expect("exit lock");
            }
        }
        self.shutdown();
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Start a server per `config`; returns once the listener is bound.
pub fn start(config: ServerConfig) -> std::io::Result<ServerHandle> {
    // Expose the compiler's cache gauges/counters through the process-wide
    // metrics registry before the first `METRICS` request can arrive.
    parallax_core::register_observability();
    let listener = TcpListener::bind(&config.addr)?;
    let addr = listener.local_addr()?;
    let disk = match &config.disk_cache_dir {
        Some(dir) => Some(DiskCache::open(dir)?),
        None => None,
    };
    let shared = Arc::new(ServiceShared {
        queue: JobQueue::new(config.queue_capacity),
        cache: Mutex::new(ResultCache::new(config.cache_capacity)),
        disk,
        metrics: Metrics::default(),
        trace_tags: Mutex::new(std::collections::VecDeque::new()),
    });
    let workers = spawn_workers(effective_workers(config.workers), shared.clone());
    let core = Arc::new(ServerCore {
        shared,
        accepting: AtomicBool::new(true),
        exiting: AtomicBool::new(false),
        workers: Mutex::new(Some(workers)),
        drain: Mutex::new(DrainPhase::Running),
        drained: Condvar::new(),
        addr,
        enqueue_timeout: Duration::from_millis(config.enqueue_timeout_ms),
        max_line_bytes: config.max_line_bytes.max(1),
        started: Instant::now(),
        exit_requested: Mutex::new(false),
        exit: Condvar::new(),
    });
    let accept_core = core.clone();
    let accept_thread = std::thread::Builder::new()
        .name("parallax-accept".to_string())
        .spawn(move || accept_loop(&listener, &accept_core))?;
    Ok(ServerHandle { core, accept_thread: Some(accept_thread) })
}

fn accept_loop(listener: &TcpListener, core: &Arc<ServerCore>) {
    for stream in listener.incoming() {
        if core.exiting.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        let core = core.clone();
        let _ = std::thread::Builder::new()
            .name("parallax-conn".to_string())
            .spawn(move || handle_connection(stream, &core));
    }
}

/// One framing read: a complete line, an oversized line (consumed through
/// its newline so the connection can resynchronize), or end of stream.
pub(crate) enum FrameRead {
    /// A complete frame (final unterminated frames before EOF included,
    /// matching `BufRead::lines`): raw bytes, newline stripped.
    Line(Vec<u8>),
    /// The line exceeded the cap; its bytes were discarded.
    Oversized,
    /// Clean end of stream.
    Eof,
}

/// Read one newline-delimited frame, buffering at most `cap` bytes. An
/// over-cap line is drained chunk by chunk (never held in memory) until
/// its newline or EOF, then reported as [`FrameRead::Oversized`] so the
/// caller can answer with a structured error and keep serving.
pub(crate) fn read_frame_capped(
    reader: &mut impl BufRead,
    cap: usize,
) -> std::io::Result<FrameRead> {
    let mut out: Vec<u8> = Vec::new();
    let mut overflowed = false;
    loop {
        let available = reader.fill_buf()?;
        if available.is_empty() {
            return Ok(match (overflowed, out.is_empty()) {
                (true, _) => FrameRead::Oversized,
                (false, true) => FrameRead::Eof,
                (false, false) => FrameRead::Line(out),
            });
        }
        let newline = available.iter().position(|&b| b == b'\n');
        let take = newline.unwrap_or(available.len());
        if !overflowed {
            if out.len() + take > cap {
                overflowed = true;
                out = Vec::new();
            } else {
                out.extend_from_slice(&available[..take]);
            }
        }
        reader.consume(take + usize::from(newline.is_some()));
        if newline.is_some() {
            return Ok(if overflowed { FrameRead::Oversized } else { FrameRead::Line(out) });
        }
    }
}

fn handle_connection(stream: TcpStream, core: &Arc<ServerCore>) {
    // Interactive request/response over tiny messages: Nagle's algorithm
    // would add tens of milliseconds per roundtrip, so send each response
    // as one immediate write.
    let _ = stream.set_nodelay(true);
    let Ok(reader_stream) = stream.try_clone() else { return };
    let mut writer = stream;
    let mut reader = BufReader::new(reader_stream);
    loop {
        let (mut response, was_shutdown) = match read_frame_capped(&mut reader, core.max_line_bytes)
        {
            Err(_) | Ok(FrameRead::Eof) => break,
            Ok(FrameRead::Oversized) => {
                Metrics::inc(&core.shared.metrics.bad_requests);
                (
                    error_response(
                        &format!(
                            "request line exceeds {} bytes; split the submission or raise \
                             the server's line cap",
                            core.max_line_bytes
                        ),
                        None,
                    ),
                    false,
                )
            }
            Ok(FrameRead::Line(bytes)) => match String::from_utf8(bytes) {
                Err(_) => {
                    Metrics::inc(&core.shared.metrics.bad_requests);
                    (error_response("request line is not valid UTF-8", None), false)
                }
                Ok(line) if line.trim().is_empty() => continue,
                Ok(line) => handle_request(&line, core),
            },
        };
        response.push('\n');
        let written = writer.write_all(response.as_bytes());
        if was_shutdown {
            // Only now — with the drain complete *and* the ack on the wire
            // — may the daemon's wait_until_drained() proceed to exit.
            *core.exit_requested.lock().expect("exit lock") = true;
            core.exit.notify_all();
        }
        if written.is_err() {
            break;
        }
    }
}

/// Dispatch one request line to its handler; always returns one response
/// line (never panics on malformed input). The flag marks a shutdown
/// request whose drain has completed.
fn handle_request(line: &str, core: &Arc<ServerCore>) -> (String, bool) {
    let shared = &core.shared;
    match parse_request(line) {
        Err(e) => {
            Metrics::inc(&shared.metrics.bad_requests);
            (error_response(&e, None), false)
        }
        Ok(Request::Ping) => (
            Json::obj(vec![
                ("ok", Json::Bool(true)),
                ("pong", Json::Bool(true)),
                ("uptime_us", Json::Int(core.started.elapsed().as_micros() as u64)),
            ])
            .encode(),
            false,
        ),
        Ok(Request::Stats) => {
            let stats = shared.metrics.to_json(
                shared.queue.len(),
                shared.queue.capacity(),
                shared.cache_json(),
            );
            // The trace id rides the response *wrapper* so the `stats`
            // object itself keeps its pinned (golden-tested) shape.
            let trace = format!("{:016x}", parallax_trace::next_trace_id());
            (
                Json::obj(vec![
                    ("ok", Json::Bool(true)),
                    ("trace_id", Json::Str(trace)),
                    ("stats", stats),
                ])
                .encode(),
                false,
            )
        }
        Ok(Request::Metrics) => (
            Json::obj(vec![
                ("ok", Json::Bool(true)),
                ("metrics", Json::Str(parallax_trace::render_prometheus())),
            ])
            .encode(),
            false,
        ),
        Ok(Request::Trace { limit }) => (trace_response(shared, limit), false),
        Ok(Request::Shutdown) => {
            core.drain();
            (
                Json::obj(vec![("ok", Json::Bool(true)), ("drained", Json::Bool(true))]).encode(),
                true,
            )
        }
        Ok(Request::Drain) => {
            core.drain();
            (
                Json::obj(vec![("ok", Json::Bool(true)), ("drained", Json::Bool(true))]).encode(),
                false,
            )
        }
        Ok(Request::Cache(op)) => (handle_cache_op(op, core), false),
        Ok(Request::Shards) => (shard_role_response(core), false),
        Ok(Request::Submit(req)) => (handle_submit(&req, core), false),
        Ok(Request::SubmitSweep(req)) => (handle_sweep(&req, core), false),
    }
}

/// The admin `CACHE` ops: flush the in-memory tier, resize its byte
/// budget, or persist it to disk. Every response carries the post-op
/// cache snapshot so the admin sees the effect without a second round
/// trip.
fn handle_cache_op(op: CacheOp, core: &Arc<ServerCore>) -> String {
    let shared = &core.shared;
    let mut pairs = vec![("ok", Json::Bool(true))];
    match op {
        CacheOp::Flush => {
            shared.cache.lock().expect("cache lock").clear();
            pairs.push(("flushed", Json::Bool(true)));
        }
        CacheOp::Resize { bytes } => {
            shared.cache.lock().expect("cache lock").set_capacity(bytes);
            pairs.push(("resized", Json::Int(bytes as u64)));
        }
        CacheOp::Persist => {
            let Some(disk) = &shared.disk else {
                return error_response(
                    "no disk cache configured (start the server with --disk-cache DIR)",
                    None,
                );
            };
            let mut persisted = 0u64;
            shared.cache.lock().expect("cache lock").for_each(|key, payload| {
                disk.store(key, payload);
                persisted += 1;
            });
            pairs.push(("persisted", Json::Int(persisted)));
        }
    }
    pairs.push(("cache", shared.cache_json()));
    Json::obj(pairs).encode()
}

/// A plain shard's `SHARDS` answer: its role and vitals. The router
/// overrides this with the full topology; a shard answering for itself is
/// what lets an admin point the same client at either tier.
fn shard_role_response(core: &Arc<ServerCore>) -> String {
    let shared = &core.shared;
    Json::obj(vec![
        ("ok", Json::Bool(true)),
        ("role", Json::Str("shard".into())),
        ("accepting", Json::Bool(core.accepting.load(Ordering::SeqCst))),
        ("uptime_us", Json::Int(core.started.elapsed().as_micros() as u64)),
        ("queue_depth", Json::Int(shared.queue.len() as u64)),
        ("cache", shared.cache_json()),
    ])
    .encode()
}

/// The `TRACE` response: the most recent per-request span trees still in
/// the ring buffer, newest first. When tracing is disabled the list is
/// empty — the `enabled` flag tells the client which case it is seeing.
/// Trees whose request carried a client-supplied trace id additionally
/// report it as `client_trace_id`, joining the tree to the id the client
/// saw echoed in its response.
fn trace_response(shared: &ServiceShared, limit: usize) -> String {
    let traces = parallax_trace::recent_traces(limit);
    let trees: Vec<Json> = traces
        .iter()
        .map(|t| {
            let events: Vec<Json> = t
                .events
                .iter()
                .map(|e| {
                    Json::obj(vec![
                        ("name", Json::Str(e.name.to_string())),
                        ("tid", Json::Int(u64::from(e.tid))),
                        ("depth", Json::Int(u64::from(e.depth))),
                        ("ts_ns", Json::Int(e.ts_ns)),
                        ("dur_ns", Json::Int(e.dur_ns)),
                    ])
                })
                .collect();
            let mut pairs = vec![("trace_id", Json::Str(format!("{:016x}", t.trace_id)))];
            if let Some(tag) = shared.client_trace_tag(t.trace_id) {
                pairs.push(("client_trace_id", Json::Str(tag)));
            }
            pairs.push(("events", Json::Arr(events)));
            Json::obj(pairs)
        })
        .collect();
    Json::obj(vec![
        ("ok", Json::Bool(true)),
        ("enabled", Json::Bool(parallax_trace::enabled())),
        ("dropped_events", Json::Int(parallax_trace::dropped_events())),
        ("traces", Json::Arr(trees)),
    ])
    .encode()
}

/// Build the compiler and resolve the circuit for a submission, rejecting
/// circuits that outsize the machine. Shared by submit and submit-sweep.
fn resolve_submission(req: &SubmitRequest) -> Result<(ParallaxCompiler, Circuit), String> {
    let compiler = req.build_compiler()?;
    let circuit = req.resolve_circuit()?;
    if circuit.num_qubits() > compiler.machine().num_sites() {
        return Err(format!(
            "circuit needs {} qubits but {} has {} sites",
            circuit.num_qubits(),
            compiler.machine().name,
            compiler.machine().num_sites()
        ));
    }
    Ok((compiler, circuit))
}

fn handle_submit(req: &SubmitRequest, core: &Arc<ServerCore>) -> String {
    let shared = &core.shared;
    let arrived = Instant::now();
    // Every submission gets a numeric trace id tagging its spans in the
    // ring buffer; the *wire* id echoed back is the client's own string
    // when supplied, else the hex rendering of the minted id.
    let trace_num = parallax_trace::next_trace_id();
    let trace = req.trace.clone().unwrap_or_else(|| format!("{trace_num:016x}"));
    if req.trace.is_some() {
        shared.record_trace_tag(trace_num, &trace);
    }
    // Tag connection-thread work (the cache probe) too, not just the
    // worker's compile.
    let _scope = parallax_trace::trace_id_scope(trace_num);
    if !core.accepting.load(Ordering::SeqCst) {
        Metrics::inc(&shared.metrics.rejected_shutdown);
        return error_response("server is shutting down", req.id);
    }
    let (compiler, circuit) = match resolve_submission(req) {
        Ok(pair) => pair,
        Err(e) => {
            Metrics::inc(&shared.metrics.bad_requests);
            return error_response(&e, req.id);
        }
    };

    let key =
        CacheKey { circuit: circuit_content_hash(&circuit), compiler: compiler.fingerprint() };
    if let Some(payload) = shared.cache.lock().expect("cache lock").get(&key) {
        Metrics::inc(&shared.metrics.cache_hits);
        let response = ok_response(req.id, &trace, true, &payload, arrived);
        shared.metrics.latency.record(arrived.elapsed().as_micros() as u64);
        return response;
    }
    // Memory missed — probe the restart-surviving disk tier. A hit is
    // promoted into memory (warming the fresh process for its keyspace)
    // and served as cached, byte-identical to the compile that wrote it.
    if let Some(disk) = &shared.disk {
        if let Some(payload) = disk.load(&key) {
            shared.cache.lock().expect("cache lock").insert(key, payload.clone());
            Metrics::inc(&shared.metrics.cache_hits);
            let response = ok_response(req.id, &trace, true, &payload, arrived);
            shared.metrics.latency.record(arrived.elapsed().as_micros() as u64);
            return response;
        }
    }

    let (reply_tx, reply_rx) = mpsc::channel();
    let job = Job { circuit, compiler, key, trace_id: trace_num, reply: reply_tx };
    match shared.queue.push_timeout(job, req.priority, core.enqueue_timeout) {
        Err(PushError::Full(_)) => {
            Metrics::inc(&shared.metrics.rejected_full);
            return error_response(
                &format!("queue full ({} jobs queued); retry later", shared.queue.capacity()),
                req.id,
            );
        }
        Err(PushError::Closed(_)) => {
            Metrics::inc(&shared.metrics.rejected_shutdown);
            return error_response("server is shutting down", req.id);
        }
        Ok(()) => {
            // Count the miss only once the job is actually accepted, so a
            // queue-full storm doesn't masquerade as a collapsing hit rate.
            Metrics::inc(&shared.metrics.cache_misses);
            Metrics::inc(&shared.metrics.submitted);
        }
    }
    let response = match reply_rx.recv() {
        Ok(JobOutcome::Done { payload, .. }) => {
            ok_response(req.id, &trace, false, &payload, arrived)
        }
        Ok(JobOutcome::Failed { error }) => {
            error_response(&format!("compilation failed: {error}"), req.id)
        }
        // Workers only exit after draining the closed queue, so an accepted
        // job always gets a reply; a broken channel means a worker died.
        Err(_) => error_response("internal error: worker disappeared", req.id),
    };
    shared.metrics.latency.record(arrived.elapsed().as_micros() as u64);
    response
}

/// Serve a parameter sweep inline on the connection thread: compile (or
/// fetch) the structure's [`parallax_core::CompiledTemplate`] once, then
/// answer every point with a parameter rebind against the shared artifact.
///
/// The response is a *stream*: one sweep header line followed by one line
/// per point, joined with `\n` (the connection loop appends the final
/// newline). Every point probes the process-wide template cache, so a cold
/// N-point sweep reports exactly 1 miss + N−1 hits; repeat sweeps are all
/// hits. Invalid sweeps (arity mismatch, non-finite angles) are refused
/// with a single structured error *before* any compilation — the server
/// keeps serving.
fn handle_sweep(req: &SweepRequest, core: &Arc<ServerCore>) -> String {
    use std::fmt::Write as _;
    let shared = &core.shared;
    let arrived = Instant::now();
    let id = req.submit.id;
    let trace_num = parallax_trace::next_trace_id();
    let trace = req.submit.trace.clone().unwrap_or_else(|| format!("{trace_num:016x}"));
    if req.submit.trace.is_some() {
        shared.record_trace_tag(trace_num, &trace);
    }
    // One trace id for the whole sweep: every per-point template probe and
    // rebind span lands in the same tree.
    let _scope = parallax_trace::trace_id_scope(trace_num);
    if !core.accepting.load(Ordering::SeqCst) {
        Metrics::inc(&shared.metrics.rejected_shutdown);
        return error_response("server is shutting down", id);
    }
    let (compiler, circuit) = match resolve_submission(&req.submit) {
        Ok(pair) => pair,
        Err(e) => {
            Metrics::inc(&shared.metrics.bad_requests);
            return error_response(&e, id);
        }
    };

    // Validate every point against the structure's slot count up front: the
    // template shape is cheap (no compile), so a bad sweep costs nothing.
    let expected = CircuitTemplate::from_circuit(&circuit).num_params();
    for (i, point) in req.params.iter().enumerate() {
        if point.len() != expected {
            Metrics::inc(&shared.metrics.bad_requests);
            return error_response(
                &format!(
                    "sweep point {i}: parameter count mismatch: template has {expected} \
                     slots, got {}",
                    point.len()
                ),
                id,
            );
        }
        if let Some(j) = point.iter().position(|v| !v.is_finite()) {
            Metrics::inc(&shared.metrics.bad_requests);
            return error_response(
                &format!("sweep point {i}: parameter {j} is not finite ({})", point[j]),
                id,
            );
        }
    }

    // Key the template cache once for the whole sweep: the key renders the
    // slot-canonical QASM text, which would otherwise be the single largest
    // per-point cost. Each point still probes the cache itself, so the
    // hit/miss accounting stays per point (1 miss + N-1 hits when cold).
    let key = parallax_core::template_key(&compiler, &circuit);

    let mut lines = vec![String::new()]; // header placeholder, filled last
    let mut payload: Option<String> = None;
    let mut hits = 0u64;
    for (i, point) in req.params.iter().enumerate() {
        let t0 = Instant::now();
        let (template, cached) = parallax_core::compiled_template_keyed(key, &compiler, &circuit);
        // Materialize the bound circuit — the artifact a backend would
        // execute — and attest it per point via its bit-exact hash
        // (`circuit_bits_hash`, not the QASM text hash: float formatting
        // would dominate the rebind and defeat the microsecond budget).
        let bound = match template.rebind(point) {
            Ok(b) => b,
            Err(e) => {
                // Unreachable after the up-front validation, but a sweep
                // must never panic the connection thread.
                Metrics::inc(&shared.metrics.bad_requests);
                return error_response(&format!("sweep point {i}: {e}"), id);
            }
        };
        let bound_hash = parallax_circuit::circuit_bits_hash(&bound);
        let ns = t0.elapsed().as_nanos() as u64;
        let payload = payload.get_or_insert_with(|| compile_payload(template.result()).encode());
        Metrics::inc(&shared.metrics.sweep_points);
        if cached {
            hits += 1;
            Metrics::inc(&shared.metrics.template_cache_hits);
            shared.metrics.rebind_ns.add(ns);
        } else {
            Metrics::inc(&shared.metrics.template_cache_misses);
        }
        let mut line = String::with_capacity(payload.len() + 96);
        let _ = write!(
            line,
            "{{\"ok\":true,\"point\":{i},\"cached\":{cached},\"rebind_ns\":{ns},\
             \"bound_hash\":\"{bound_hash:016x}\",\"result\":{payload}}}"
        );
        lines.push(line);
    }

    let total_us = arrived.elapsed().as_micros() as u64;
    let mut header = String::with_capacity(128);
    header.push_str("{\"ok\":true,\"sweep\":true,");
    if let Some(id) = id {
        let _ = write!(header, "\"id\":{id},");
    }
    let _ = write!(
        header,
        "\"trace_id\":{},\"points\":{},\"params_per_point\":{expected},\
         \"template_cache_hits\":{hits},\"total_us\":{total_us}}}",
        Json::Str(trace).encode(),
        req.params.len()
    );
    lines[0] = header;
    shared.metrics.latency.record(total_us);
    lines.join("\n")
}

fn ok_response(
    id: Option<u64>,
    trace: &str,
    cached: bool,
    payload: &str,
    arrived: Instant,
) -> String {
    // The payload is already canonically encoded, so splice it in verbatim
    // — no parse/re-encode on the serving hot path, and the served
    // `result` stays byte-identical to a direct compile's encoding.
    use std::fmt::Write as _;
    let mut out = String::with_capacity(payload.len() + 96);
    out.push_str("{\"ok\":true,");
    if let Some(id) = id {
        let _ = write!(out, "\"id\":{id},");
    }
    let _ = write!(
        out,
        "\"trace_id\":{},\"cached\":{cached},\"total_us\":{},\"result\":{payload}}}",
        Json::Str(trace.to_string()).encode(),
        arrived.elapsed().as_micros()
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    fn test_server(workers: usize, queue: usize, cache: usize) -> ServerHandle {
        start(ServerConfig {
            workers,
            queue_capacity: queue,
            cache_capacity: cache,
            enqueue_timeout_ms: 50,
            ..Default::default()
        })
        .expect("bind ephemeral port")
    }

    fn submit_line(workload: &str, seed: u64) -> String {
        format!("{{\"cmd\":\"submit\",\"workload\":\"{workload}\",\"seed\":{seed},\"quick\":true}}")
    }

    #[test]
    fn handles_requests_in_process() {
        let server = test_server(2, 8, 1 << 20);
        let core = &server.core;
        let pong = json::parse(&handle_request("{\"cmd\":\"ping\"}", core).0).unwrap();
        assert_eq!(pong.get("pong").and_then(Json::as_bool), Some(true));

        let first = json::parse(&handle_request(&submit_line("ADD", 1), core).0).unwrap();
        assert_eq!(first.get("ok").and_then(Json::as_bool), Some(true));
        assert_eq!(first.get("cached").and_then(Json::as_bool), Some(false));
        let repeat = json::parse(&handle_request(&submit_line("ADD", 1), core).0).unwrap();
        assert_eq!(repeat.get("cached").and_then(Json::as_bool), Some(true));
        assert_eq!(
            first.get("result").unwrap().encode(),
            repeat.get("result").unwrap().encode(),
            "cache must serve the identical payload"
        );

        let stats = json::parse(&handle_request("{\"cmd\":\"stats\"}", core).0).unwrap();
        let stats = stats.get("stats").unwrap();
        assert_eq!(stats.get("cache_hits").and_then(Json::as_u64), Some(1));
        assert_eq!(stats.get("cache_misses").and_then(Json::as_u64), Some(1));
        assert_eq!(stats.get("completed").and_then(Json::as_u64), Some(1));
    }

    #[test]
    fn responses_carry_trace_ids_and_echo_client_supplied_ones() {
        let server = test_server(1, 4, 1 << 20);
        let core = &server.core;
        // Server-minted: 16 lowercase hex digits.
        let r = json::parse(&handle_request(&submit_line("ADD", 11), core).0).unwrap();
        let minted = r.get("trace_id").and_then(Json::as_str).expect("trace_id").to_string();
        assert_eq!(minted.len(), 16, "minted ids are 16-hex: {minted}");
        assert!(minted.chars().all(|c| c.is_ascii_hexdigit()));
        // Client-supplied: echoed verbatim (and on the cached path too).
        let tagged = "{\"cmd\":\"submit\",\"workload\":\"ADD\",\"seed\":11,\"quick\":true,\
             \"trace_id\":\"corr-abc\"}";
        let r = json::parse(&handle_request(tagged, core).0).unwrap();
        assert_eq!(r.get("cached").and_then(Json::as_bool), Some(true));
        assert_eq!(r.get("trace_id").and_then(Json::as_str), Some("corr-abc"));
        // Stats responses are tagged on the wrapper, not inside `stats`.
        let s = json::parse(&handle_request("{\"cmd\":\"stats\"}", core).0).unwrap();
        assert!(s.get("trace_id").and_then(Json::as_str).is_some());
        assert!(s.get("stats").unwrap().get("trace_id").is_none());
    }

    #[test]
    fn metrics_op_serves_prometheus_text() {
        let server = test_server(1, 4, 1 << 20);
        let core = &server.core;
        let _ = handle_request(&submit_line("QFT", 2), core).0;
        let r = json::parse(&handle_request("{\"cmd\":\"metrics\"}", core).0).unwrap();
        assert_eq!(r.get("ok").and_then(Json::as_bool), Some(true));
        let text = r.get("metrics").and_then(Json::as_str).expect("metrics text");
        assert!(text.contains("# TYPE parallax_service_events_total counter"), "{text}");
        assert!(text.contains("parallax_compile_stat_total"), "{text}");
        assert!(text.contains("parallax_service_latency_us_bucket"), "{text}");
    }

    #[test]
    fn trace_op_returns_span_trees_when_enabled() {
        let server = test_server(1, 4, 1 << 20);
        let core = &server.core;
        parallax_trace::set_enabled(true);
        let r = json::parse(&handle_request(&submit_line("TFIM", 5), core).0).unwrap();
        parallax_trace::set_enabled(false);
        let wire = r.get("trace_id").and_then(Json::as_str).unwrap().to_string();
        let t = json::parse(&handle_request("{\"cmd\":\"trace\",\"limit\":64}", core).0).unwrap();
        assert_eq!(t.get("ok").and_then(Json::as_bool), Some(true));
        let traces = match t.get("traces") {
            Some(Json::Arr(a)) => a,
            other => panic!("traces must be an array, got {other:?}"),
        };
        let tree = traces
            .iter()
            .find(|tr| tr.get("trace_id").and_then(Json::as_str) == Some(wire.as_str()))
            .expect("the traced submit's tree is retrievable by its wire id");
        let events = match tree.get("events") {
            Some(Json::Arr(a)) => a,
            other => panic!("events must be an array, got {other:?}"),
        };
        let names: Vec<&str> =
            events.iter().filter_map(|e| e.get("name").and_then(Json::as_str)).collect();
        assert!(names.contains(&"compile"), "{names:?}");
        assert!(names.contains(&"stage.schedule"), "{names:?}");
    }

    #[test]
    fn trace_op_annotates_client_tagged_requests() {
        let server = test_server(1, 4, 1 << 20);
        let core = &server.core;
        parallax_trace::set_enabled(true);
        let tagged = "{\"cmd\":\"submit\",\"workload\":\"SAT\",\"seed\":9,\"quick\":true,\
                      \"trace_id\":\"corr-xyz\"}";
        let r = json::parse(&handle_request(tagged, core).0).unwrap();
        parallax_trace::set_enabled(false);
        assert_eq!(r.get("trace_id").and_then(Json::as_str), Some("corr-xyz"));
        let t = json::parse(&handle_request("{\"cmd\":\"trace\",\"limit\":64}", core).0).unwrap();
        let traces = match t.get("traces") {
            Some(Json::Arr(a)) => a,
            other => panic!("traces must be an array, got {other:?}"),
        };
        let tree = traces
            .iter()
            .find(|tr| tr.get("client_trace_id").and_then(Json::as_str) == Some("corr-xyz"))
            .expect("client-tagged tree is annotated with its correlation id");
        assert!(tree.get("trace_id").and_then(Json::as_str).is_some());
    }

    #[test]
    fn rejects_invalid_submissions_without_queueing() {
        let server = test_server(1, 4, 1 << 20);
        let core = &server.core;
        for bad in [
            "{\"cmd\":\"submit\",\"workload\":\"NOPE\"}",
            "{\"cmd\":\"submit\",\"qasm\":\"not qasm\"}",
        ] {
            let r = json::parse(&handle_request(bad, core).0).unwrap();
            assert_eq!(r.get("ok").and_then(Json::as_bool), Some(false), "{bad}");
        }
        assert_eq!(server.shared().queue.len(), 0);
    }

    #[test]
    fn oversized_circuit_is_rejected_up_front() {
        let server = test_server(1, 4, 1 << 20);
        // 300 declared qubits outsize the 256-site quera machine.
        let qasm = "OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[300];\nh q[0];\n";
        let req = Json::obj(vec![
            ("cmd", Json::Str("submit".into())),
            ("qasm", Json::Str(qasm.into())),
            ("quick", Json::Bool(true)),
        ])
        .encode();
        let r = json::parse(&handle_request(&req, &server.core).0).unwrap();
        assert_eq!(r.get("ok").and_then(Json::as_bool), Some(false));
        assert!(r.get("error").and_then(Json::as_str).unwrap().contains("300 qubits"));
    }

    /// A two-u3 + one-cz circuit: 6 parameter slots, structure unique to
    /// this test so its template-cache key cannot collide across the suite.
    fn sweep_qasm() -> &'static str {
        "OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[2];\ncreg c[2];\n\
         u3(0.1,0.2,0.3) q[0];\nu3(0.4,0.5,0.6) q[1];\ncz q[0],q[1];\n"
    }

    fn sweep_line(params: &str) -> String {
        let req = Json::obj(vec![
            ("cmd", Json::Str("submit-sweep".into())),
            ("qasm", Json::Str(sweep_qasm().into())),
            ("seed", Json::Int(0xA11CE)),
            ("quick", Json::Bool(true)),
            ("id", Json::Int(7)),
        ])
        .encode();
        // Splice the raw params array in so tests control the exact JSON.
        format!("{},\"params\":{params}}}", &req[..req.len() - 1])
    }

    #[test]
    fn sweep_streams_one_line_per_point_from_one_template() {
        let server = test_server(1, 4, 1 << 20);
        let core = &server.core;
        let line =
            sweep_line("[[0.1,0.2,0.3,0.4,0.5,0.6],[1.0,2.0,3.0,4.0,5.0,6.0],[0,0,0,0,0,0]]");
        let response = handle_request(&line, core).0;
        let lines: Vec<&str> = response.split('\n').collect();
        assert_eq!(lines.len(), 4, "header + 3 points:\n{response}");

        let header = json::parse(lines[0]).unwrap();
        assert_eq!(header.get("ok").and_then(Json::as_bool), Some(true));
        assert_eq!(header.get("sweep").and_then(Json::as_bool), Some(true));
        assert_eq!(header.get("id").and_then(Json::as_u64), Some(7));
        assert_eq!(header.get("points").and_then(Json::as_u64), Some(3));
        assert_eq!(header.get("params_per_point").and_then(Json::as_u64), Some(6));
        assert_eq!(header.get("template_cache_hits").and_then(Json::as_u64), Some(2));

        let points: Vec<Json> = lines[1..].iter().map(|l| json::parse(l).unwrap()).collect();
        assert_eq!(points[0].get("cached").and_then(Json::as_bool), Some(false));
        for (i, p) in points.iter().enumerate() {
            assert_eq!(p.get("point").and_then(Json::as_u64), Some(i as u64));
            assert!(p.get("rebind_ns").and_then(Json::as_u64).is_some());
            assert_eq!(
                p.get("result").unwrap().encode(),
                points[0].get("result").unwrap().encode(),
                "every point shares the structure's payload"
            );
        }
        assert_eq!(points[1].get("cached").and_then(Json::as_bool), Some(true));
        assert_eq!(points[2].get("cached").and_then(Json::as_bool), Some(true));
        // Distinct angles → distinct bound circuits, attested per point.
        assert_ne!(
            points[0].get("bound_hash").and_then(Json::as_str),
            points[1].get("bound_hash").and_then(Json::as_str)
        );

        // A repeat sweep is all hits.
        let repeat = handle_request(&sweep_line("[[9,8,7,6,5,4]]"), core).0;
        let header = json::parse(repeat.split('\n').next().unwrap()).unwrap();
        assert_eq!(header.get("template_cache_hits").and_then(Json::as_u64), Some(1));

        let stats = json::parse(&handle_request("{\"cmd\":\"stats\"}", core).0).unwrap();
        let stats = stats.get("stats").unwrap();
        assert_eq!(stats.get("sweep_points").and_then(Json::as_u64), Some(4));
        assert_eq!(stats.get("template_cache_hits").and_then(Json::as_u64), Some(3));
        assert_eq!(stats.get("template_cache_misses").and_then(Json::as_u64), Some(1));
    }

    #[test]
    fn sweep_rejects_bad_points_with_one_structured_error() {
        let server = test_server(1, 4, 1 << 20);
        let core = &server.core;
        for (params, needle) in [
            ("[[0.1,0.2]]", "parameter count mismatch"),
            ("[[0.1,0.2,0.3,0.4,0.5,1e999]]", "not finite"),
        ] {
            let response = handle_request(&sweep_line(params), core).0;
            assert!(!response.contains('\n'), "errors are single-line: {response}");
            let r = json::parse(&response).unwrap();
            assert_eq!(r.get("ok").and_then(Json::as_bool), Some(false), "{params}");
            assert!(r.get("error").and_then(Json::as_str).unwrap().contains(needle), "{response}");
            assert_eq!(r.get("id").and_then(Json::as_u64), Some(7));
        }
        // The server keeps compiling after refused sweeps.
        let ok = json::parse(&handle_request(&submit_line("ADD", 3), core).0).unwrap();
        assert_eq!(ok.get("ok").and_then(Json::as_bool), Some(true));
    }

    #[test]
    fn shutdown_is_idempotent_and_rejects_new_submits() {
        let mut server = test_server(2, 8, 1 << 20);
        let ok = json::parse(&handle_request(&submit_line("MLT", 1), &server.core).0).unwrap();
        assert_eq!(ok.get("ok").and_then(Json::as_bool), Some(true));
        let drained =
            json::parse(&handle_request("{\"cmd\":\"shutdown\"}", &server.core).0).unwrap();
        assert_eq!(drained.get("drained").and_then(Json::as_bool), Some(true));
        let refused = json::parse(&handle_request(&submit_line("MLT", 2), &server.core).0).unwrap();
        assert_eq!(refused.get("ok").and_then(Json::as_bool), Some(false));
        // Stats still served while draining/drained.
        let stats = json::parse(&handle_request("{\"cmd\":\"stats\"}", &server.core).0).unwrap();
        assert_eq!(
            stats.get("stats").and_then(|s| s.get("rejected_shutdown")).and_then(Json::as_u64),
            Some(1)
        );
        server.shutdown();
        server.shutdown(); // idempotent
    }
}
