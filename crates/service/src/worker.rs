//! The compile worker pool.
//!
//! Workers pop jobs off the shared [`JobQueue`] (highest priority first),
//! drive [`ParallaxCompiler::compile`], publish the canonical payload into
//! the result cache, and hand the outcome back to the submitting
//! connection over the job's reply channel. A panicking compilation is
//! caught and surfaced as a per-job failure — one poisoned circuit cannot
//! take a worker (or the server) down.

use crate::cache::CacheKey;
use crate::metrics::Metrics;
use crate::protocol::compile_payload;
use crate::queue::JobQueue;
use crate::ServiceShared;
use parallax_circuit::Circuit;
use parallax_core::ParallaxCompiler;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

/// One accepted compile job.
pub struct Job {
    /// The optimized circuit to compile.
    pub circuit: Circuit,
    /// Compiler for the requested (machine, config).
    pub compiler: ParallaxCompiler,
    /// Content address for the result cache.
    pub key: CacheKey,
    /// Numeric trace id of the originating request: the worker tags every
    /// span of this job's compile with it, so the service `TRACE` op can
    /// slice the ring buffer per request.
    pub trace_id: u64,
    /// Where the submitting connection waits for the outcome.
    pub reply: mpsc::Sender<JobOutcome>,
}

/// What a worker sends back for one job.
#[derive(Debug, Clone, PartialEq)]
pub enum JobOutcome {
    /// Compilation succeeded; `payload` is the canonical encoded result.
    Done {
        /// Canonical result payload (also inserted into the cache).
        payload: String,
        /// Pure compile time, µs.
        compile_us: u64,
    },
    /// Compilation panicked.
    Failed {
        /// The panic message.
        error: String,
    },
}

/// Number of workers to start for `requested` (0 = available CPUs).
pub fn effective_workers(requested: usize) -> usize {
    if requested == 0 {
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
    } else {
        requested
    }
}

/// Spawn `count` workers draining `shared.queue` until it is closed and
/// empty. Joining the returned handles therefore waits for every accepted
/// job to finish — the graceful-shutdown drain.
pub fn spawn_workers(count: usize, shared: Arc<ServiceShared>) -> Vec<JoinHandle<()>> {
    (0..count.max(1))
        .map(|i| {
            let shared = shared.clone();
            std::thread::Builder::new()
                .name(format!("parallax-worker-{i}"))
                .spawn(move || worker_loop(&shared))
                .expect("spawn worker thread")
        })
        .collect()
}

fn worker_loop(shared: &ServiceShared) {
    while let Some(job) = shared.queue.pop() {
        let outcome = run_job(&job, &shared.metrics, |key, payload| {
            // Write-through: the disk tier gets every compiled payload, so
            // a restarted process answers this key without recompiling.
            if let Some(disk) = &shared.disk {
                disk.store(&key, &payload);
            }
            shared.cache.lock().expect("cache lock").insert(key, payload);
        });
        // A dropped receiver (client went away mid-compile) is fine; the
        // result is already cached for the next submission.
        let _ = job.reply.send(outcome);
    }
}

/// Compile one job, record metrics, and publish via `publish` on success.
fn run_job(job: &Job, metrics: &Metrics, publish: impl FnOnce(CacheKey, String)) -> JobOutcome {
    // Tag every span the compile records with the request's trace id; the
    // guard sits outside catch_unwind, so the previous id is restored even
    // when the compile panics.
    let _trace = parallax_trace::trace_id_scope(job.trace_id);
    let started = Instant::now();
    match catch_unwind(AssertUnwindSafe(|| job.compiler.compile(&job.circuit))) {
        Ok(result) => {
            let payload = compile_payload(&result).encode();
            publish(job.key, payload.clone());
            Metrics::inc(&metrics.completed);
            JobOutcome::Done { payload, compile_us: started.elapsed().as_micros() as u64 }
        }
        Err(panic) => {
            Metrics::inc(&metrics.failed);
            JobOutcome::Failed { error: parallax_core::panic_message(panic) }
        }
    }
}

/// Queue type alias used across the service.
pub type ServiceQueue = JobQueue<Job>;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::circuit_content_hash;
    use parallax_circuit::CircuitBuilder;
    use parallax_core::CompilerConfig;
    use parallax_hardware::MachineSpec;

    fn job(reply: mpsc::Sender<JobOutcome>) -> Job {
        let mut b = CircuitBuilder::new(3);
        b.h(0).cx(0, 1).cx(1, 2);
        let circuit = b.build();
        let compiler =
            ParallaxCompiler::new(MachineSpec::quera_aquila_256(), CompilerConfig::quick(1));
        let key =
            CacheKey { circuit: circuit_content_hash(&circuit), compiler: compiler.fingerprint() };
        Job { circuit, compiler, key, trace_id: parallax_trace::next_trace_id(), reply }
    }

    #[test]
    fn run_job_compiles_and_publishes() {
        let (tx, _rx) = mpsc::channel();
        let j = job(tx);
        let metrics = Metrics::default();
        let mut published = None;
        let outcome = run_job(&j, &metrics, |k, p| published = Some((k, p)));
        match outcome {
            JobOutcome::Done { payload, .. } => {
                let (k, p) = published.expect("published");
                assert_eq!(k, j.key);
                assert_eq!(p, payload);
                assert!(payload.contains("\"digest\""));
            }
            other => panic!("unexpected outcome {other:?}"),
        }
        assert_eq!(metrics.completed.get(), 1);
    }

    #[test]
    fn panicking_compile_is_isolated() {
        // 9 qubits on a 2x2-site machine: the discretizer's site-assignment
        // `expect` fires, exercising the worker's catch_unwind path.
        let mut b = CircuitBuilder::new(9);
        for i in 0..8u32 {
            b.cx(i, i + 1);
        }
        let circuit = b.build();
        let tiny = MachineSpec { grid_dim: 2, ..MachineSpec::quera_aquila_256() };
        let compiler = ParallaxCompiler::new(tiny, CompilerConfig::quick(1));
        let key = CacheKey { circuit: 0, compiler: 0 };
        let (tx, _rx) = mpsc::channel();
        let j = Job { circuit, compiler, key, trace_id: 0, reply: tx };
        let metrics = Metrics::default();
        let outcome = run_job(&j, &metrics, |_, _| panic!("must not publish"));
        assert!(matches!(outcome, JobOutcome::Failed { .. }), "got {outcome:?}");
        assert_eq!(metrics.failed.get(), 1);
    }
}
