//! Live service metrics: job counters, latency histogram, cache and queue
//! gauges — everything the `STATS` command reports.
//!
//! Counters live in the process-wide `parallax-trace` metrics registry
//! (family `parallax_service_events_total`, one series per event kind),
//! so the same numbers back both the JSON `STATS` snapshot and the
//! Prometheus `METRICS` exposition. Each [`Metrics`] instance gets its own
//! `instance` label: servers in the same process (tests run several) keep
//! independent counts, exactly as the old per-struct atomics did, while a
//! production process exposes its single instance's series. The hot path
//! is unchanged — a registered counter is one relaxed `fetch_add`.
//! Snapshots are encoded with the canonical [`crate::json`] encoder.

use crate::json::Json;
pub use parallax_trace::Counter;
use parallax_trace::Histogram;

/// Upper bounds (µs, inclusive) of the latency histogram buckets; the last
/// bucket is unbounded. Spans 100 µs to 100 s in decades.
pub const LATENCY_BUCKET_BOUNDS_US: [u64; 7] =
    [100, 1_000, 10_000, 100_000, 1_000_000, 10_000_000, 100_000_000];

/// A fixed-bucket log-scale latency histogram (a [`parallax_trace::Histogram`]
/// with the service's decade bounds and the `STATS` JSON shape).
#[derive(Debug)]
pub struct LatencyHistogram {
    inner: Histogram,
}

impl Default for LatencyHistogram {
    /// A detached histogram (not in the registry) — unit tests and other
    /// standalone uses. Service instances are built registered via
    /// [`Metrics::new`].
    fn default() -> Self {
        Self { inner: Histogram::detached(&LATENCY_BUCKET_BOUNDS_US) }
    }
}

impl LatencyHistogram {
    fn registered(instance: &str) -> Self {
        Self {
            inner: parallax_trace::histogram(
                "parallax_service_latency_us",
                &[("instance", instance)],
                &LATENCY_BUCKET_BOUNDS_US,
            ),
        }
    }

    /// Record one latency observation.
    pub fn record(&self, micros: u64) {
        self.inner.record(micros);
    }

    /// Observations recorded so far.
    pub fn count(&self) -> u64 {
        self.inner.count()
    }

    /// Mean latency in µs (0 when empty).
    pub fn mean_us(&self) -> u64 {
        self.inner.mean()
    }

    /// Snapshot as JSON: bucket upper bounds and counts, plus summary.
    pub fn to_json(&self) -> Json {
        let counts: Vec<Json> = self.inner.bucket_counts().into_iter().map(Json::Int).collect();
        let mut bounds: Vec<Json> =
            LATENCY_BUCKET_BOUNDS_US.iter().map(|&b| Json::Int(b)).collect();
        bounds.push(Json::Null); // the overflow bucket has no upper bound
        Json::obj(vec![
            ("bounds_us", Json::Arr(bounds)),
            ("counts", Json::Arr(counts)),
            ("count", Json::Int(self.count())),
            ("mean_us", Json::Int(self.mean_us())),
            ("max_us", Json::Int(self.inner.max())),
        ])
    }
}

/// All service counters, shared by reference across threads. Each field is
/// a registry handle; the struct itself is just the instance's view.
#[derive(Debug)]
pub struct Metrics {
    /// Jobs accepted into the queue (excludes cache hits and rejections).
    pub submitted: Counter,
    /// Jobs compiled to completion.
    pub completed: Counter,
    /// Jobs whose compilation panicked.
    pub failed: Counter,
    /// Submissions refused because the queue was full (backpressure).
    pub rejected_full: Counter,
    /// Submissions refused because the server was draining.
    pub rejected_shutdown: Counter,
    /// Submissions answered straight from the result cache.
    pub cache_hits: Counter,
    /// Submissions that had to compile (cache misses).
    pub cache_misses: Counter,
    /// Malformed or invalid request lines.
    pub bad_requests: Counter,
    /// Parameter points served through `submit-sweep`.
    pub sweep_points: Counter,
    /// Sweep points answered by the process-wide template cache (a rebind,
    /// no compile).
    pub template_cache_hits: Counter,
    /// Sweep points that had to compile their structure's template.
    pub template_cache_misses: Counter,
    /// Cumulative nanoseconds spent on the rebind fast path (template-hit
    /// sweep points only, so `rebind_ns / template_cache_hits` is the mean
    /// cost of serving one warm sweep point).
    pub rebind_ns: Counter,
    /// End-to-end submit latency (arrival to response encode), µs.
    pub latency: LatencyHistogram,
}

impl Default for Metrics {
    fn default() -> Self {
        Self::new()
    }
}

impl Metrics {
    /// Create this server's registry-backed counters under a fresh
    /// `instance` label.
    pub fn new() -> Self {
        use std::sync::atomic::{AtomicU64, Ordering};
        static INSTANCE: AtomicU64 = AtomicU64::new(0);
        let instance = INSTANCE.fetch_add(1, Ordering::Relaxed).to_string();
        let event = |event: &str| {
            parallax_trace::counter(
                "parallax_service_events_total",
                &[("event", event), ("instance", &instance)],
            )
        };
        Self {
            submitted: event("submitted"),
            completed: event("completed"),
            failed: event("failed"),
            rejected_full: event("rejected_full"),
            rejected_shutdown: event("rejected_shutdown"),
            cache_hits: event("cache_hit"),
            cache_misses: event("cache_miss"),
            bad_requests: event("bad_request"),
            sweep_points: event("sweep_point"),
            template_cache_hits: event("template_cache_hit"),
            template_cache_misses: event("template_cache_miss"),
            rebind_ns: parallax_trace::counter(
                "parallax_service_rebind_ns_total",
                &[("instance", &instance)],
            ),
            latency: LatencyHistogram::registered(&instance),
        }
    }

    /// Bump `counter` by one.
    pub fn inc(counter: &Counter) {
        counter.inc();
    }

    /// Snapshot every counter (plus the caller-supplied queue gauges) as
    /// the `STATS` payload. `cache` is the per-server result cache; the
    /// process-wide sub-objects (`layout_cache`, `plan_cache`,
    /// `template_cache`, `profile`) are snapshotted here — they are global
    /// to the process, so there is nothing server-specific to inject.
    pub fn to_json(&self, queue_depth: usize, queue_capacity: usize, cache: Json) -> Json {
        let layout_cache = Self::layout_cache_json();
        let plan_cache = Self::plan_cache_json();
        let template_cache = Self::template_cache_json();
        let profile = Self::profile_json();
        let multi_mover = Self::multi_mover_json();
        let load = |c: &Counter| Json::Int(c.get());
        Json::obj(vec![
            ("submitted", load(&self.submitted)),
            ("completed", load(&self.completed)),
            ("failed", load(&self.failed)),
            ("rejected_full", load(&self.rejected_full)),
            ("rejected_shutdown", load(&self.rejected_shutdown)),
            ("cache_hits", load(&self.cache_hits)),
            ("cache_misses", load(&self.cache_misses)),
            ("bad_requests", load(&self.bad_requests)),
            ("sweep_points", load(&self.sweep_points)),
            ("template_cache_hits", load(&self.template_cache_hits)),
            ("template_cache_misses", load(&self.template_cache_misses)),
            ("rebind_ns", load(&self.rebind_ns)),
            ("queue_depth", Json::Int(queue_depth as u64)),
            ("queue_capacity", Json::Int(queue_capacity as u64)),
            ("cache", cache),
            ("layout_cache", layout_cache),
            ("plan_cache", plan_cache),
            ("template_cache", template_cache),
            ("profile", profile),
            ("multi_mover", multi_mover),
            ("latency", self.latency.to_json()),
        ])
    }

    /// The process-wide layout-cache counters as a `STATS` sub-object.
    /// `capacity` and `weight` are in qubit-units (size-aware eviction);
    /// `len` counts entries.
    pub fn layout_cache_json() -> Json {
        let s = parallax_core::layout_cache_stats();
        Json::obj(vec![
            ("len", Json::Int(s.len as u64)),
            ("capacity", Json::Int(s.capacity as u64)),
            ("weight", Json::Int(s.weight as u64)),
            ("hits", Json::Int(s.hits)),
            ("misses", Json::Int(s.misses)),
            ("evictions", Json::Int(s.evictions)),
        ])
    }

    /// The process-wide move-plan cache counters as a `STATS` sub-object.
    /// `capacity` and `weight` are in position-units (snapshot positions
    /// plus stored moves per entry); `len` counts entries. Hits mean the
    /// scheduler skipped a probe cascade for repeat traffic across
    /// compiles; the per-compile reuse counters travel with each
    /// compilation's own stats instead. `contended` counts probes that
    /// found their shard's lock held — the residual serialization left
    /// after sharding the cache across independent locks.
    pub fn plan_cache_json() -> Json {
        let s = parallax_core::plan_cache_stats();
        Json::obj(vec![
            ("len", Json::Int(s.len as u64)),
            ("capacity", Json::Int(s.capacity as u64)),
            ("weight", Json::Int(s.weight as u64)),
            ("hits", Json::Int(s.hits)),
            ("misses", Json::Int(s.misses)),
            ("evictions", Json::Int(s.evictions)),
            ("contended", Json::Int(s.contended)),
        ])
    }

    /// The process-wide compiled-template cache counters as a `STATS`
    /// sub-object. `capacity` and `weight` are qubit-units (a template is
    /// charged its qubit count plus scheduled gate/move volume); `len`
    /// counts entries. A hit means a whole variational sweep point was
    /// served by a parameter rebind instead of a placement + scheduling
    /// run.
    pub fn template_cache_json() -> Json {
        let s = parallax_core::template_cache_stats();
        Json::obj(vec![
            ("len", Json::Int(s.len as u64)),
            ("capacity", Json::Int(s.capacity as u64)),
            ("weight", Json::Int(s.weight as u64)),
            ("hits", Json::Int(s.hits)),
            ("misses", Json::Int(s.misses)),
            ("evictions", Json::Int(s.evictions)),
        ])
    }

    /// The process-wide multi-mover scheduling counters as a `STATS`
    /// sub-object, read back from the compile-stat registry family
    /// (`parallax_compile_stat_total{stat="multi_mover_*"}`). All zero
    /// until a compile runs with `"scheduling":"multi-mover"` — the
    /// ablation is off by default, and this sub-object is how an operator
    /// confirms whether a fleet is exercising it.
    pub fn multi_mover_json() -> Json {
        let stat = |stat: &str| {
            Json::Int(
                parallax_trace::counter("parallax_compile_stat_total", &[("stat", stat)]).get(),
            )
        };
        Json::obj(vec![
            ("compiles", stat("multi_mover_compiles")),
            ("multi_layers", stat("multi_mover_multi_layers")),
            ("layers_saved", stat("multi_mover_layers_saved")),
            ("conflicts", stat("multi_mover_conflicts")),
            ("home_return_skips", stat("home_return_skips")),
        ])
    }

    /// The `PARALLAX_PROFILE` per-stage counters as a `STATS` sub-object
    /// (all-zero stages when profiling is disabled).
    pub fn profile_json() -> Json {
        let stages = parallax_core::profile::snapshot()
            .iter()
            .map(|s| {
                Json::obj(vec![
                    ("stage", Json::Str(s.stage.to_string())),
                    ("calls", Json::Int(s.calls)),
                    ("total_us", Json::Int(s.total_us)),
                    ("allocs", Json::Int(s.allocs)),
                ])
            })
            .collect();
        Json::obj(vec![
            ("enabled", Json::Bool(parallax_core::profile::enabled())),
            ("stages", Json::Arr(stages)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_by_decade() {
        let h = LatencyHistogram::default();
        h.record(50); // bucket 0 (<=100µs)
        h.record(100); // bucket 0 (inclusive bound)
        h.record(500); // bucket 1
        h.record(2_000_000); // bucket 5 (<=10s)
        h.record(u64::MAX); // overflow bucket
        let j = h.to_json();
        let counts = match j.get("counts") {
            Some(Json::Arr(v)) => v.iter().map(|c| c.as_u64().unwrap()).collect::<Vec<_>>(),
            _ => panic!("no counts"),
        };
        assert_eq!(counts.len(), 8);
        assert_eq!(counts[0], 2);
        assert_eq!(counts[1], 1);
        assert_eq!(counts[5], 1);
        assert_eq!(counts[7], 1);
        assert_eq!(h.count(), 5);
    }

    #[test]
    fn mean_and_max_track_observations() {
        let h = LatencyHistogram::default();
        assert_eq!(h.mean_us(), 0);
        h.record(10);
        h.record(30);
        assert_eq!(h.mean_us(), 20);
        assert_eq!(h.to_json().get("max_us").and_then(Json::as_u64), Some(30));
    }

    #[test]
    fn stats_snapshot_includes_gauges() {
        let m = Metrics::default();
        Metrics::inc(&m.submitted);
        Metrics::inc(&m.cache_hits);
        let j = m.to_json(3, 64, Json::obj(vec![("len", Json::Num(1.0))]));
        assert_eq!(j.get("submitted").and_then(Json::as_u64), Some(1));
        assert_eq!(j.get("cache_hits").and_then(Json::as_u64), Some(1));
        assert_eq!(j.get("queue_depth").and_then(Json::as_u64), Some(3));
        assert_eq!(j.get("queue_capacity").and_then(Json::as_u64), Some(64));
        assert_eq!(j.get("cache").and_then(|c| c.get("len")).and_then(Json::as_u64), Some(1));
        // Sweep counters ride along (zero until a submit-sweep is served).
        assert_eq!(j.get("sweep_points").and_then(Json::as_u64), Some(0));
        assert_eq!(j.get("template_cache_hits").and_then(Json::as_u64), Some(0));
        assert_eq!(j.get("rebind_ns").and_then(Json::as_u64), Some(0));
        // Every process-wide cache layer is part of every snapshot.
        for layer in ["layout_cache", "plan_cache", "template_cache"] {
            let lc = j.get(layer).unwrap_or_else(|| panic!("{layer} sub-object"));
            for key in ["len", "capacity", "weight", "hits", "misses", "evictions"] {
                assert!(lc.get(key).and_then(Json::as_u64).is_some(), "missing {layer}.{key}");
            }
        }
        let mm = j.get("multi_mover").expect("multi_mover sub-object");
        for key in ["compiles", "multi_layers", "layers_saved", "conflicts", "home_return_skips"] {
            assert!(mm.get(key).and_then(Json::as_u64).is_some(), "missing multi_mover.{key}");
        }
        let profile = j.get("profile").expect("profile sub-object");
        assert!(profile.get("enabled").and_then(Json::as_bool).is_some());
        // The four pipeline stages plus the scheduler's four sub-stages.
        let Some(Json::Arr(stages)) = profile.get("stages") else { panic!("profile.stages") };
        assert_eq!(stages.len(), 8);
    }

    #[test]
    fn instances_are_independent_and_exposed() {
        let a = Metrics::new();
        let b = Metrics::new();
        a.submitted.inc();
        a.submitted.inc();
        b.submitted.inc();
        assert_eq!(a.submitted.get(), 2);
        assert_eq!(b.submitted.get(), 1);
        a.latency.record(42);
        // Both instances appear in the process-wide exposition.
        let text = parallax_trace::render_prometheus_filtered("parallax_service_");
        assert!(text.contains("# TYPE parallax_service_events_total counter"), "{text}");
        assert!(text.contains("parallax_service_latency_us_count"), "{text}");
    }
}
