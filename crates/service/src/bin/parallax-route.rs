//! The fabric router daemon: front N `parallax-serve` shards with one
//! address, sharding by consistent hashing on the job's content address.
//!
//! ```text
//! parallax-route --shard HOST:PORT [--shard HOST:PORT ...]
//!                [--addr HOST:PORT] [--vnodes N]
//! ```
//!
//! Binds the address (default `127.0.0.1:7979`), prints the resolved
//! address, and routes until a client sends `{"cmd":"shutdown"}` — the
//! shutdown fans out to every shard (draining the whole fabric) before
//! the router exits.

use parallax_service::{start_router, RouterConfig};

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    eprintln!(
        "usage: parallax-route --shard HOST:PORT [--shard HOST:PORT ...] \
         [--addr HOST:PORT] [--vnodes N]"
    );
    std::process::exit(2)
}

fn main() {
    let mut config = RouterConfig { addr: "127.0.0.1:7979".to_string(), ..RouterConfig::default() };
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--addr" => {
                config.addr = it.next().cloned().unwrap_or_else(|| die("--addr expects HOST:PORT"))
            }
            "--shard" => config
                .shards
                .push(it.next().cloned().unwrap_or_else(|| die("--shard expects HOST:PORT"))),
            "--vnodes" => {
                config.vnodes = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n| n >= 1)
                    .unwrap_or_else(|| die("bad --vnodes"))
            }
            other => die(&format!("unknown argument '{other}'")),
        }
    }
    if config.shards.is_empty() {
        die("at least one --shard HOST:PORT is required");
    }

    let shards = config.shards.clone();
    let vnodes = config.vnodes;
    let mut router = match start_router(config) {
        Ok(r) => r,
        Err(e) => die(&format!("cannot start router: {e}")),
    };
    println!(
        "parallax-route listening on {} ({} shards, {} vnodes each): {}",
        router.addr(),
        shards.len(),
        vnodes,
        shards.join(", ")
    );
    router.wait_until_drained();
    println!("parallax-route drained; bye");
}
