//! Command-line client for `parallax-serve`.
//!
//! ```text
//! parallax-client [--addr HOST:PORT] ping
//! parallax-client [--addr HOST:PORT] stats
//! parallax-client [--addr HOST:PORT] metrics
//! parallax-client [--addr HOST:PORT] trace [--limit N]
//! parallax-client [--addr HOST:PORT] shutdown
//! parallax-client [--addr HOST:PORT] drain
//! parallax-client [--addr HOST:PORT] shards
//! parallax-client [--addr HOST:PORT] cache-flush
//! parallax-client [--addr HOST:PORT] cache-resize BYTES
//! parallax-client [--addr HOST:PORT] cache-persist
//! parallax-client [--addr HOST:PORT] submit <file.qasm|-> \
//!     [--seed N] [--machine quera|atom] [--quick] [--no-return-home]
//!     [--priority 0..9] [--aod-dim N] [--trace-id STR]
//! parallax-client [--addr HOST:PORT] submit --workload NAME [options...]
//! parallax-client [--addr HOST:PORT] sweep <file.qasm|-> | --workload NAME \
//!     [--points N] [--param-seed S] [submit options...]
//! ```
//!
//! `submit` prints the compilation metrics the server returned; repeat an
//! identical submission to watch `cached: true` come back instantly. Pass
//! `--trace-id my-request-7` to correlate the submission with the server's
//! span log; without it the server mints (and echoes) a 16-hex id.
//!
//! `metrics` prints the server's unified registry in Prometheus text
//! exposition format, ready to pipe into a scrape file.
//!
//! `trace` prints the last N per-request span trees still in the server's
//! ring buffer (requires the server to run with `PARALLAX_TRACE=1`).
//!
//! `sweep` resolves the circuit locally to count its U3 angle slots,
//! generates `--points` pseudo-random parameter vectors in [-π, π), and
//! drives the server's `submit-sweep` fast path: the structure compiles
//! once, every other point is a template-cache rebind.

use parallax_circuit::CircuitTemplate;
use parallax_service::{
    render_stats, Json, ServiceClient, SubmitRequest, SubmitSource, SweepRequest,
};
use std::io::Read;

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    eprintln!(
        "usage: parallax-client [--addr HOST:PORT] \
         <ping|stats|metrics|trace|shutdown|drain|shards|\n\
         cache-flush|cache-resize|cache-persist|submit|sweep> ...\n\
         submit: <file.qasm|-> | --workload NAME, plus [--seed N] [--machine quera|atom]\n\
         [--quick] [--no-return-home] [--priority 0..9] [--aod-dim N] [--trace-id STR]\n\
         sweep: submit arguments plus [--points N] [--param-seed S]\n\
         trace: [--limit N] most recent compile span trees"
    );
    std::process::exit(2)
}

/// The circuit source for submit/sweep: a QASM file, stdin, or a workload.
fn resolve_source(workload: Option<String>, path: Option<String>) -> SubmitSource {
    match (workload, path) {
        (Some(w), None) => SubmitSource::Workload(w),
        (None, Some(p)) => {
            let text = if p == "-" {
                let mut buf = String::new();
                std::io::stdin().read_to_string(&mut buf).unwrap_or_else(|e| die(&e.to_string()));
                buf
            } else {
                std::fs::read_to_string(&p).unwrap_or_else(|e| die(&format!("{p}: {e}")))
            };
            SubmitSource::Qasm(text)
        }
        (Some(_), Some(_)) => die("provide a file or --workload, not both"),
        (None, None) => die("submit needs a QASM file, '-', or --workload NAME"),
    }
}

/// Deterministic angle stream in [-π, π): an splitmix-style LCG so the CLI
/// needs no RNG dependency and a given `--param-seed` replays exactly.
fn angle_stream(seed: u64) -> impl FnMut() -> f64 {
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(0xD1B5_4A32_D192_ED03);
    move || {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        let unit = (state >> 11) as f64 / (1u64 << 53) as f64;
        (2.0 * unit - 1.0) * std::f64::consts::PI
    }
}

/// Render a `TRACE` response as indented per-request span trees: one
/// header line per trace id, one line per span (depth → indentation).
fn render_trace(v: &Json) -> String {
    let traces = match v.get("traces") {
        Some(Json::Arr(a)) => a.as_slice(),
        _ => &[],
    };
    if traces.is_empty() {
        let enabled = v.get("enabled").and_then(Json::as_bool).unwrap_or(false);
        return if enabled {
            "no traces recorded yet (submit a job first)".to_string()
        } else {
            "tracing is disabled on the server (start it with PARALLAX_TRACE=1)".to_string()
        };
    }
    let mut out = String::new();
    for tree in traces {
        let id = tree.get("trace_id").and_then(Json::as_str).unwrap_or("?");
        let events = match tree.get("events") {
            Some(Json::Arr(a)) => a.as_slice(),
            _ => &[],
        };
        match tree.get("client_trace_id").and_then(Json::as_str) {
            Some(tag) => {
                out.push_str(&format!("trace {id} (client: {tag})  ({} spans)\n", events.len()))
            }
            None => out.push_str(&format!("trace {id}  ({} spans)\n", events.len())),
        }
        for e in events {
            let g = |k: &str| e.get(k).and_then(Json::as_u64).unwrap_or(0);
            let name = e.get("name").and_then(Json::as_str).unwrap_or("?");
            let indent = "  ".repeat(g("depth") as usize + 1);
            out.push_str(&format!("{indent}{name:<24} {:.3} ms\n", g("dur_ns") as f64 / 1e6));
        }
    }
    out.trim_end().to_string()
}

/// Render a `SHARDS` response: a router's topology as one line per shard,
/// or a single shard's self-report.
fn render_shards(v: &Json) -> String {
    let shards = match v.get("shards") {
        Some(Json::Arr(a)) => a.as_slice(),
        _ => {
            // A plain shard answering for itself.
            let role = v.get("role").and_then(Json::as_str).unwrap_or("?");
            let accepting = v.get("accepting").and_then(Json::as_bool).unwrap_or(false);
            let depth = v.get("queue_depth").and_then(Json::as_u64).unwrap_or(0);
            return format!("role: {role}  accepting: {accepting}  queue depth: {depth}");
        }
    };
    let mut out = format!(
        "router fronting {} shards ({} vnodes each)\n",
        shards.len(),
        v.get("vnodes").and_then(Json::as_u64).unwrap_or(0)
    );
    for s in shards {
        let idx = s.get("index").and_then(Json::as_u64).unwrap_or(0);
        let addr = s.get("addr").and_then(Json::as_str).unwrap_or("?");
        let forwarded = s.get("forwarded").and_then(Json::as_u64).unwrap_or(0);
        if s.get("reachable").and_then(Json::as_bool) == Some(true) {
            let info = s.get("info").cloned().unwrap_or(Json::Null);
            let accepting = info.get("accepting").and_then(Json::as_bool).unwrap_or(false);
            let depth = info.get("queue_depth").and_then(Json::as_u64).unwrap_or(0);
            let cache_len =
                info.get("cache").and_then(|c| c.get("len")).and_then(Json::as_u64).unwrap_or(0);
            out.push_str(&format!(
                "  shard {idx}  {addr}  up  accepting: {accepting}  queue: {depth}  \
                 cache entries: {cache_len}  forwarded: {forwarded}\n"
            ));
        } else {
            let err = s.get("error").and_then(Json::as_str).unwrap_or("unreachable");
            out.push_str(&format!("  shard {idx}  {addr}  DOWN  {err}\n"));
        }
    }
    out.trim_end().to_string()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut addr = "127.0.0.1:7878".to_string();
    let mut command: Option<String> = None;
    let mut path: Option<String> = None;
    let mut request = SubmitRequest { quick: false, ..Default::default() };
    let mut workload: Option<String> = None;
    let mut points = 100usize;
    let mut param_seed = 0u64;
    let mut trace_limit: Option<usize> = None;

    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--addr" => {
                addr = it.next().cloned().unwrap_or_else(|| die("--addr expects HOST:PORT"))
            }
            "--workload" => {
                workload =
                    Some(it.next().cloned().unwrap_or_else(|| die("--workload expects a name")))
            }
            "--seed" => {
                request.seed =
                    it.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| die("bad --seed"))
            }
            "--machine" => {
                request.machine =
                    it.next().cloned().unwrap_or_else(|| die("--machine expects quera|atom"))
            }
            "--aod-dim" => {
                request.aod_dim = Some(
                    it.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| die("bad --aod-dim")),
                )
            }
            "--priority" => {
                request.priority =
                    it.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| die("bad --priority"))
            }
            "--points" => {
                points =
                    it.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| die("bad --points"))
            }
            "--param-seed" => {
                param_seed = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("bad --param-seed"))
            }
            "--trace-id" => {
                request.trace =
                    Some(it.next().cloned().unwrap_or_else(|| die("--trace-id expects a string")))
            }
            "--limit" => {
                trace_limit = Some(
                    it.next()
                        .and_then(|v| v.parse().ok())
                        .filter(|&n| n >= 1)
                        .unwrap_or_else(|| die("bad --limit (must be >= 1)")),
                )
            }
            "--quick" => request.quick = true,
            "--no-return-home" => request.return_home = false,
            other if !other.starts_with("--") && command.is_none() => {
                command = Some(other.to_string())
            }
            other if !other.starts_with("--") && path.is_none() => path = Some(other.to_string()),
            other => die(&format!("unknown argument '{other}'")),
        }
    }
    let command = command.unwrap_or_else(|| die("missing command"));

    let mut client = match ServiceClient::connect(&addr) {
        Ok(c) => c,
        Err(e) => die(&format!("cannot connect to {addr}: {e}")),
    };

    let outcome = match command.as_str() {
        "ping" => client.ping().map(|v| v.encode()),
        "stats" => client.stats_response().map(|v| {
            let mut out = String::new();
            if let Some(trace) = v.get("trace_id").and_then(Json::as_str) {
                out.push_str(&format!("trace id      {trace}\n"));
            }
            out.push_str(&render_stats(v.get("stats").unwrap_or(&Json::Null)));
            out.trim_end().to_string()
        }),
        "metrics" => client.metrics().map(|text| text.trim_end().to_string()),
        "trace" => client
            .trace(trace_limit.unwrap_or(parallax_service::DEFAULT_TRACE_LIMIT))
            .map(|v| render_trace(&v)),
        "shutdown" => client.shutdown().map(|v| v.encode()),
        "drain" => client.drain().map(|v| v.encode()),
        "shards" => client.shards().map(|v| render_shards(&v)),
        "cache-flush" => client.cache_flush().map(|v| v.encode()),
        "cache-persist" => client.cache_persist().map(|v| v.encode()),
        "cache-resize" => {
            let bytes = path
                .as_deref()
                .and_then(|v| v.parse().ok())
                .unwrap_or_else(|| die("cache-resize needs a BYTES argument"));
            client.cache_resize(bytes).map(|v| v.encode())
        }
        "submit" => {
            request.source = resolve_source(workload, path);
            client.submit(request).map(|reply| {
                let mut out = format!(
                    "cached: {}  server latency: {} µs  trace id: {}\n",
                    reply.cached, reply.total_us, reply.trace_id
                );
                if let Json::Obj(pairs) = &reply.result {
                    for (k, v) in pairs {
                        out.push_str(&format!("{k:<18} {}\n", v.encode()));
                    }
                }
                out.trim_end().to_string()
            })
        }
        "sweep" => {
            request.source = resolve_source(workload, path);
            // Resolve locally only to count the structure's angle slots;
            // the server re-resolves from the same request fields.
            let circuit = request.resolve_circuit().unwrap_or_else(|e| die(&e));
            let slots = CircuitTemplate::from_circuit(&circuit).num_params();
            if slots == 0 {
                die("circuit has no U3 angle slots to sweep");
            }
            let mut next = angle_stream(param_seed);
            let params: Vec<Vec<f64>> =
                (0..points.max(1)).map(|_| (0..slots).map(|_| next()).collect()).collect();
            client.submit_sweep(SweepRequest { submit: request, params }).map(|reply| {
                let hits = reply.points.iter().filter(|p| p.cached).count();
                let hit_ns: Vec<u64> =
                    reply.points.iter().filter(|p| p.cached).map(|p| p.rebind_ns).collect();
                let mean_ns =
                    hit_ns.iter().sum::<u64>().checked_div(hit_ns.len() as u64).unwrap_or(0);
                let mut out = format!(
                    "points: {}  slots/point: {}  template hits: {hits} ({:.1}%)\n\
                     server latency: {} µs total, rebind mean {mean_ns} ns/point\n\
                     trace id: {}\n",
                    reply.points.len(),
                    reply.params_per_point,
                    100.0 * hits as f64 / reply.points.len().max(1) as f64,
                    reply.total_us,
                    reply.trace_id,
                );
                if let Some(first) = reply.points.first() {
                    if let Some(digest) = first.result.get("digest") {
                        out.push_str(&format!("shared schedule digest: {}\n", digest.encode()));
                    }
                }
                out.trim_end().to_string()
            })
        }
        other => die(&format!("unknown command '{other}'")),
    };

    match outcome {
        Ok(text) => println!("{text}"),
        Err(e) => die(&e.to_string()),
    }
}
