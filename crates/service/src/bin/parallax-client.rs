//! Command-line client for `parallax-serve`.
//!
//! ```text
//! parallax-client [--addr HOST:PORT] ping
//! parallax-client [--addr HOST:PORT] stats
//! parallax-client [--addr HOST:PORT] shutdown
//! parallax-client [--addr HOST:PORT] submit <file.qasm|-> \
//!     [--seed N] [--machine quera|atom] [--quick] [--no-return-home]
//!     [--priority 0..9] [--aod-dim N]
//! parallax-client [--addr HOST:PORT] submit --workload NAME [options...]
//! ```
//!
//! `submit` prints the compilation metrics the server returned; repeat an
//! identical submission to watch `cached: true` come back instantly.

use parallax_service::{render_stats, Json, ServiceClient, SubmitRequest, SubmitSource};
use std::io::Read;

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    eprintln!(
        "usage: parallax-client [--addr HOST:PORT] <ping|stats|shutdown|submit> ...\n\
         submit: <file.qasm|-> | --workload NAME, plus [--seed N] [--machine quera|atom]\n\
         [--quick] [--no-return-home] [--priority 0..9] [--aod-dim N]"
    );
    std::process::exit(2)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut addr = "127.0.0.1:7878".to_string();
    let mut command: Option<String> = None;
    let mut path: Option<String> = None;
    let mut request = SubmitRequest { quick: false, ..Default::default() };
    let mut workload: Option<String> = None;

    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--addr" => {
                addr = it.next().cloned().unwrap_or_else(|| die("--addr expects HOST:PORT"))
            }
            "--workload" => {
                workload =
                    Some(it.next().cloned().unwrap_or_else(|| die("--workload expects a name")))
            }
            "--seed" => {
                request.seed =
                    it.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| die("bad --seed"))
            }
            "--machine" => {
                request.machine =
                    it.next().cloned().unwrap_or_else(|| die("--machine expects quera|atom"))
            }
            "--aod-dim" => {
                request.aod_dim = Some(
                    it.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| die("bad --aod-dim")),
                )
            }
            "--priority" => {
                request.priority =
                    it.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| die("bad --priority"))
            }
            "--quick" => request.quick = true,
            "--no-return-home" => request.return_home = false,
            other if !other.starts_with("--") && command.is_none() => {
                command = Some(other.to_string())
            }
            other if !other.starts_with("--") && path.is_none() => path = Some(other.to_string()),
            other => die(&format!("unknown argument '{other}'")),
        }
    }
    let command = command.unwrap_or_else(|| die("missing command"));

    let mut client = match ServiceClient::connect(&addr) {
        Ok(c) => c,
        Err(e) => die(&format!("cannot connect to {addr}: {e}")),
    };

    let outcome = match command.as_str() {
        "ping" => client.ping().map(|v| v.encode()),
        "stats" => client.stats().map(|v| render_stats(&v)),
        "shutdown" => client.shutdown().map(|v| v.encode()),
        "submit" => {
            request.source = match (workload, path) {
                (Some(w), None) => SubmitSource::Workload(w),
                (None, Some(p)) => {
                    let text = if p == "-" {
                        let mut buf = String::new();
                        std::io::stdin()
                            .read_to_string(&mut buf)
                            .unwrap_or_else(|e| die(&e.to_string()));
                        buf
                    } else {
                        std::fs::read_to_string(&p).unwrap_or_else(|e| die(&format!("{p}: {e}")))
                    };
                    SubmitSource::Qasm(text)
                }
                (Some(_), Some(_)) => die("provide a file or --workload, not both"),
                (None, None) => die("submit needs a QASM file, '-', or --workload NAME"),
            };
            client.submit(request).map(|reply| {
                let mut out =
                    format!("cached: {}  server latency: {} µs\n", reply.cached, reply.total_us);
                if let Json::Obj(pairs) = &reply.result {
                    for (k, v) in pairs {
                        out.push_str(&format!("{k:<18} {}\n", v.encode()));
                    }
                }
                out.trim_end().to_string()
            })
        }
        other => die(&format!("unknown command '{other}'")),
    };

    match outcome {
        Ok(text) => println!("{text}"),
        Err(e) => die(&e.to_string()),
    }
}
