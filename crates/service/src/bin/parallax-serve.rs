//! The compile server daemon.
//!
//! ```text
//! parallax-serve [--addr HOST:PORT] [--workers N] [--queue N] [--cache BYTES]
//!                [--disk-cache DIR] [--enqueue-timeout-ms N]
//! ```
//!
//! Binds the address (default `127.0.0.1:7878`), prints the resolved
//! address, and serves until a client sends `{"cmd":"shutdown"}` —
//! accepted jobs are drained before the process exits.

use parallax_service::{start, ServerConfig};

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    eprintln!(
        "usage: parallax-serve [--addr HOST:PORT] [--workers N] [--queue N] [--cache BYTES] \
         [--disk-cache DIR] [--enqueue-timeout-ms N]"
    );
    std::process::exit(2)
}

fn main() {
    let mut config = ServerConfig { addr: "127.0.0.1:7878".to_string(), ..ServerConfig::default() };
    fn num(value: Option<&String>, name: &str) -> usize {
        value.and_then(|v| v.parse().ok()).unwrap_or_else(|| die(&format!("bad {name}")))
    }
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--addr" => {
                config.addr = it.next().cloned().unwrap_or_else(|| die("--addr expects HOST:PORT"))
            }
            "--workers" => config.workers = num(it.next(), "--workers"),
            "--queue" => config.queue_capacity = num(it.next(), "--queue").max(1),
            "--cache" => config.cache_capacity = num(it.next(), "--cache"),
            "--disk-cache" => {
                config.disk_cache_dir =
                    Some(it.next().cloned().unwrap_or_else(|| die("--disk-cache expects DIR")))
            }
            "--enqueue-timeout-ms" => {
                config.enqueue_timeout_ms = num(it.next(), "--enqueue-timeout-ms") as u64
            }
            other => die(&format!("unknown argument '{other}'")),
        }
    }

    let mut server = match start(config.clone()) {
        Ok(s) => s,
        Err(e) => die(&format!("cannot start on {}: {e}", config.addr)),
    };
    println!(
        "parallax-serve listening on {} ({} workers, queue {}, cache {} bytes{})",
        server.addr(),
        parallax_service::worker::effective_workers(config.workers),
        config.queue_capacity,
        config.cache_capacity,
        match &config.disk_cache_dir {
            Some(dir) => format!(", disk cache {dir}"),
            None => String::new(),
        }
    );
    // Block until a client drives the shutdown command, then finish the
    // drain (the handle's Drop would also drain if we exited otherwise).
    server.wait_until_drained();
    println!("parallax-serve drained; bye");
}
