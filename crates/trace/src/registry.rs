//! The process-wide metrics registry.
//!
//! One registry absorbs every counter the stack used to scatter across
//! ad-hoc statics: pipeline stage timers (`parallax-core::profile`),
//! service job/cache counters (`parallax-service::metrics`), and the
//! process-wide cache layers. Metrics are **named families** of **labeled
//! series**; a handle ([`Counter`], [`Gauge`], [`Histogram`]) is an `Arc`
//! onto the series' atomics, so the hot path after registration is one
//! `fetch_add` — the registry lock is only taken at registration and
//! exposition time.
//!
//! Components whose state lives elsewhere (the cache layers' own hit/miss
//! atomics, queue depths) publish through a [`Collector`] callback sampled
//! at exposition time — the Prometheus pull model — instead of mirroring
//! every update into a second atomic.
//!
//! [`render_prometheus`] renders the whole registry (families sorted by
//! name, series by label set) as Prometheus text exposition, which the
//! service's `METRICS` op and `parallax-client metrics` serve verbatim.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// A monotonically increasing counter handle.
#[derive(Debug, Clone)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Create a detached counter (not registered; unit tests).
    pub fn detached() -> Self {
        Counter(Arc::new(AtomicU64::new(0)))
    }

    /// Add one.
    #[inline]
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Add `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    /// Zero the counter (test isolation; exposition treats it as a reset).
    pub fn reset(&self) {
        self.0.store(0, Ordering::Relaxed);
    }
}

/// A settable gauge handle (non-negative values).
#[derive(Debug, Clone)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// Set the gauge.
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// The shared state of a fixed-bucket histogram: cumulative-style buckets
/// (recorded into the first bucket whose inclusive upper bound fits),
/// plus count/sum/max summaries. Bounds are in whatever unit the caller
/// records (the service uses µs); the last bucket is unbounded.
#[derive(Debug)]
pub struct HistogramCore {
    bounds: Vec<u64>,
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl HistogramCore {
    fn new(bounds: &[u64]) -> Self {
        Self {
            bounds: bounds.to_vec(),
            buckets: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }
}

/// A fixed-bucket histogram handle.
#[derive(Debug, Clone)]
pub struct Histogram(Arc<HistogramCore>);

impl Histogram {
    /// Create a detached histogram (not registered; unit tests and
    /// standalone use).
    pub fn detached(bounds: &[u64]) -> Self {
        Histogram(Arc::new(HistogramCore::new(bounds)))
    }

    /// Record one observation.
    pub fn record(&self, value: u64) {
        let c = &self.0;
        let idx = c.bounds.iter().position(|&b| value <= b).unwrap_or(c.bounds.len());
        c.buckets[idx].fetch_add(1, Ordering::Relaxed);
        c.count.fetch_add(1, Ordering::Relaxed);
        c.sum.fetch_add(value, Ordering::Relaxed);
        c.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Inclusive upper bounds of the bounded buckets.
    pub fn bounds(&self) -> &[u64] {
        &self.0.bounds
    }

    /// Per-bucket counts (bounded buckets then the overflow bucket).
    pub fn bucket_counts(&self) -> Vec<u64> {
        self.0.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect()
    }

    /// Observations recorded.
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// Sum of every recorded value.
    pub fn sum(&self) -> u64 {
        self.0.sum.load(Ordering::Relaxed)
    }

    /// Largest recorded value (0 when empty).
    pub fn max(&self) -> u64 {
        self.0.max.load(Ordering::Relaxed)
    }

    /// Mean value (0 when empty).
    pub fn mean(&self) -> u64 {
        self.sum().checked_div(self.count()).unwrap_or(0)
    }
}

/// What kind of series a [`Sample`] reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SampleKind {
    /// Monotonic counter (rendered with a `counter` TYPE line).
    Counter,
    /// Point-in-time gauge (rendered with a `gauge` TYPE line).
    Gauge,
}

/// One exposition sample produced by a [`Collector`].
#[derive(Debug, Clone)]
pub struct Sample {
    /// Metric family name (`snake_case`, counters end in `_total`).
    pub name: String,
    /// Label pairs, rendered in the given order.
    pub labels: Vec<(String, String)>,
    /// The value.
    pub value: u64,
    /// Counter or gauge.
    pub kind: SampleKind,
}

impl Sample {
    /// Counter sample helper.
    pub fn counter(name: &str, labels: &[(&str, &str)], value: u64) -> Self {
        Self {
            name: name.to_string(),
            labels: labels.iter().map(|(k, v)| (k.to_string(), v.to_string())).collect(),
            value,
            kind: SampleKind::Counter,
        }
    }

    /// Gauge sample helper.
    pub fn gauge(name: &str, labels: &[(&str, &str)], value: u64) -> Self {
        Self {
            name: name.to_string(),
            labels: labels.iter().map(|(k, v)| (k.to_string(), v.to_string())).collect(),
            value,
            kind: SampleKind::Gauge,
        }
    }
}

/// A pull-model metrics source sampled at exposition time.
pub type Collector = Box<dyn Fn(&mut Vec<Sample>) + Send + Sync>;

enum Series {
    Counter(Arc<AtomicU64>),
    Gauge(Arc<AtomicU64>),
    Histogram(Arc<HistogramCore>),
}

struct Family {
    series: BTreeMap<String, Series>,
}

struct Registry {
    families: BTreeMap<String, Family>,
    collectors: BTreeMap<String, Collector>,
}

fn registry() -> &'static Mutex<Registry> {
    static R: OnceLock<Mutex<Registry>> = OnceLock::new();
    R.get_or_init(|| {
        Mutex::new(Registry { families: BTreeMap::new(), collectors: BTreeMap::new() })
    })
}

/// Render a label set as its exposition fragment (`{k="v",...}`; empty
/// string for no labels). Doubles as the series key, so a (name, labels)
/// pair always resolves to the same atomics.
fn label_key(labels: &[(&str, &str)]) -> String {
    if labels.is_empty() {
        return String::new();
    }
    let mut out = String::from("{");
    for (i, (k, v)) in labels.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(k);
        out.push_str("=\"");
        for ch in v.chars() {
            match ch {
                '\\' => out.push_str("\\\\"),
                '"' => out.push_str("\\\""),
                '\n' => out.push_str("\\n"),
                c => out.push(c),
            }
        }
        out.push('"');
    }
    out.push('}');
    out
}

/// Get or create the counter `name{labels}`.
pub fn counter(name: &str, labels: &[(&str, &str)]) -> Counter {
    let key = label_key(labels);
    let mut reg = registry().lock().expect("metrics registry lock");
    let family = reg.families.entry(name.to_string()).or_insert(Family { series: BTreeMap::new() });
    match family.series.entry(key).or_insert_with(|| Series::Counter(Arc::new(AtomicU64::new(0)))) {
        Series::Counter(a) => Counter(Arc::clone(a)),
        _ => panic!("metric '{name}' already registered with a different type"),
    }
}

/// Get or create the gauge `name{labels}`.
pub fn gauge(name: &str, labels: &[(&str, &str)]) -> Gauge {
    let key = label_key(labels);
    let mut reg = registry().lock().expect("metrics registry lock");
    let family = reg.families.entry(name.to_string()).or_insert(Family { series: BTreeMap::new() });
    match family.series.entry(key).or_insert_with(|| Series::Gauge(Arc::new(AtomicU64::new(0)))) {
        Series::Gauge(a) => Gauge(Arc::clone(a)),
        _ => panic!("metric '{name}' already registered with a different type"),
    }
}

/// Get or create the histogram `name{labels}` with the given inclusive
/// bucket upper bounds (an unbounded overflow bucket is added).
pub fn histogram(name: &str, labels: &[(&str, &str)], bounds: &[u64]) -> Histogram {
    let key = label_key(labels);
    let mut reg = registry().lock().expect("metrics registry lock");
    let family = reg.families.entry(name.to_string()).or_insert(Family { series: BTreeMap::new() });
    match family
        .series
        .entry(key)
        .or_insert_with(|| Series::Histogram(Arc::new(HistogramCore::new(bounds))))
    {
        Series::Histogram(h) => Histogram(Arc::clone(h)),
        _ => panic!("metric '{name}' already registered with a different type"),
    }
}

/// Register (or replace) the pull-model collector `id`. Registration is
/// idempotent by id, so lazily-initialized components can call this on
/// every init path without duplicating samples.
pub fn register_collector(id: &str, f: Collector) {
    registry().lock().expect("metrics registry lock").collectors.insert(id.to_string(), f);
}

/// Render the full registry as Prometheus text exposition.
pub fn render_prometheus() -> String {
    render_prometheus_filtered("")
}

/// [`render_prometheus`] restricted to families whose name starts with
/// `prefix` (tests pin golden output without seeing unrelated metrics; an
/// empty prefix renders everything).
pub fn render_prometheus_filtered(prefix: &str) -> String {
    let reg = registry().lock().expect("metrics registry lock");
    // Sampled collector output merges with registered families by name so
    // exposition stays sorted and deterministic for a fixed set of series.
    let mut collected: Vec<Sample> = Vec::new();
    for f in reg.collectors.values() {
        f(&mut collected);
    }
    let mut extra: BTreeMap<String, Vec<(String, u64, SampleKind)>> = BTreeMap::new();
    for s in collected {
        if !s.name.starts_with(prefix) {
            continue;
        }
        let labels: Vec<(&str, &str)> =
            s.labels.iter().map(|(k, v)| (k.as_str(), v.as_str())).collect();
        extra.entry(s.name.clone()).or_default().push((label_key(&labels), s.value, s.kind));
    }

    let mut out = String::new();
    let mut emitted: std::collections::BTreeSet<&String> = std::collections::BTreeSet::new();
    for (name, family) in reg.families.iter().filter(|(n, _)| n.starts_with(prefix)) {
        emitted.insert(name);
        let type_name = match family.series.values().next() {
            Some(Series::Counter(_)) => "counter",
            Some(Series::Gauge(_)) => "gauge",
            Some(Series::Histogram(_)) => "histogram",
            None => continue,
        };
        out.push_str(&format!("# TYPE {name} {type_name}\n"));
        for (labels, series) in &family.series {
            match series {
                Series::Counter(a) | Series::Gauge(a) => {
                    out.push_str(&format!("{name}{labels} {}\n", a.load(Ordering::Relaxed)));
                }
                Series::Histogram(h) => render_histogram_series(&mut out, name, labels, h),
            }
        }
        // Collector samples may extend a registered family (rare); append
        // them under the family's TYPE line.
        if let Some(samples) = extra.remove(name) {
            for (labels, value, _) in samples {
                out.push_str(&format!("{name}{labels} {value}\n"));
            }
        }
    }
    for (name, samples) in extra {
        let type_name = match samples.first().map(|(_, _, k)| *k) {
            Some(SampleKind::Counter) => "counter",
            _ => "gauge",
        };
        out.push_str(&format!("# TYPE {name} {type_name}\n"));
        for (labels, value, _) in samples {
            out.push_str(&format!("{name}{labels} {value}\n"));
        }
    }
    out
}

fn render_histogram_series(out: &mut String, name: &str, labels: &str, h: &HistogramCore) {
    // `le` joins the series' own labels inside one brace pair.
    let open = |le: &str| {
        if labels.is_empty() {
            format!("{{le=\"{le}\"}}")
        } else {
            format!("{},le=\"{le}\"}}", &labels[..labels.len() - 1])
        }
    };
    let mut cumulative = 0u64;
    for (i, bound) in h.bounds.iter().enumerate() {
        cumulative += h.buckets[i].load(Ordering::Relaxed);
        out.push_str(&format!("{name}_bucket{} {cumulative}\n", open(&bound.to_string())));
    }
    cumulative += h.buckets[h.bounds.len()].load(Ordering::Relaxed);
    out.push_str(&format!("{name}_bucket{} {cumulative}\n", open("+Inf")));
    out.push_str(&format!("{name}_sum{labels} {}\n", h.sum.load(Ordering::Relaxed)));
    out.push_str(&format!("{name}_count{labels} {}\n", h.count.load(Ordering::Relaxed)));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_share_series_by_name_and_labels() {
        let a = counter("regtest_shared_total", &[("x", "1")]);
        let b = counter("regtest_shared_total", &[("x", "1")]);
        let other = counter("regtest_shared_total", &[("x", "2")]);
        a.inc();
        b.add(2);
        assert_eq!(a.get(), 3);
        assert_eq!(other.get(), 0);
    }

    #[test]
    fn histogram_buckets_count_and_max() {
        let h = Histogram::detached(&[10, 100]);
        h.record(5);
        h.record(10);
        h.record(50);
        h.record(1000);
        assert_eq!(h.bucket_counts(), vec![2, 1, 1]);
        assert_eq!(h.count(), 4);
        assert_eq!(h.sum(), 1065);
        assert_eq!(h.max(), 1000);
        assert_eq!(h.mean(), 266);
    }

    #[test]
    fn prometheus_exposition_golden() {
        // A dedicated prefix isolates this test from every other series the
        // shared process registry accumulates.
        let c = counter("zgold_jobs_total", &[("event", "done")]);
        c.add(7);
        counter("zgold_jobs_total", &[("event", "failed")]);
        gauge("zgold_depth", &[]).set(3);
        let h = histogram("zgold_latency_us", &[("instance", "0")], &[100, 1000]);
        h.record(50);
        h.record(700);
        h.record(5000);
        register_collector(
            "zgold",
            Box::new(|out| {
                out.push(Sample::gauge("zgold_pulled", &[("cache", "layout")], 42));
            }),
        );
        let text = render_prometheus_filtered("zgold_");
        let expected = "\
# TYPE zgold_depth gauge
zgold_depth 3
# TYPE zgold_jobs_total counter
zgold_jobs_total{event=\"done\"} 7
zgold_jobs_total{event=\"failed\"} 0
# TYPE zgold_latency_us histogram
zgold_latency_us_bucket{instance=\"0\",le=\"100\"} 1
zgold_latency_us_bucket{instance=\"0\",le=\"1000\"} 2
zgold_latency_us_bucket{instance=\"0\",le=\"+Inf\"} 3
zgold_latency_us_sum{instance=\"0\"} 5750
zgold_latency_us_count{instance=\"0\"} 3
# TYPE zgold_pulled gauge
zgold_pulled{cache=\"layout\"} 42
";
        assert_eq!(text, expected);
    }

    #[test]
    fn label_values_are_escaped() {
        assert_eq!(label_key(&[("k", "a\"b\\c\nd")]), "{k=\"a\\\"b\\\\c\\nd\"}");
    }
}
