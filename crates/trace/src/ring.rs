//! Lock-free span tracing into a fixed-size ring buffer.
//!
//! A [`Span`] (usually opened with the [`span!`](crate::span) macro) records
//! one *complete* event — name, thread, nesting depth, start timestamp,
//! duration, and the trace id of the enclosing request — into a process-wide
//! ring of seqlock-protected slots. Writers never block and never allocate:
//! a global ticket counter assigns each event a slot + generation, a single
//! CAS claims the slot, and a writer that catches a still-publishing
//! predecessor *drops its event* (bumping [`dropped_events`]) instead of
//! waiting, so memory stays bounded and the hot path stays wait-free.
//!
//! Readers ([`snapshot_events`]) validate each slot's sequence word before
//! and after copying, so a torn (mid-write) slot is skipped, never surfaced.
//!
//! Tracing follows the same cached-boolean discipline as
//! `parallax_core::profile`: [`enabled`] is one relaxed atomic load, and a
//! disabled process pays nothing beyond that load per `span!` site. Unlike
//! the profiler's env-latched flag, the state is runtime-flippable with
//! [`set_enabled`] so in-process tests can byte-diff traced vs untraced
//! compiles.

use std::cell::Cell;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

// ---------------------------------------------------------------------------
// Enable flag

const STATE_UNINIT: u8 = 0;
const STATE_OFF: u8 = 1;
const STATE_ON: u8 = 2;

static STATE: AtomicU8 = AtomicU8::new(STATE_UNINIT);

/// Is span tracing enabled? One relaxed load on the hot path; the first
/// call latches `PARALLAX_TRACE=1` from the environment.
#[inline]
pub fn enabled() -> bool {
    match STATE.load(Ordering::Relaxed) {
        STATE_ON => true,
        STATE_OFF => false,
        _ => init_state(),
    }
}

#[cold]
fn init_state() -> bool {
    let on = std::env::var("PARALLAX_TRACE").map(|v| v == "1").unwrap_or(false);
    let new = if on { STATE_ON } else { STATE_OFF };
    // Racing initializers compute the same value; last store wins harmlessly.
    let _ = STATE.compare_exchange(STATE_UNINIT, new, Ordering::Relaxed, Ordering::Relaxed);
    STATE.load(Ordering::Relaxed) == STATE_ON
}

/// Enable or disable span tracing at runtime (overrides the env latch).
pub fn set_enabled(on: bool) {
    STATE.store(if on { STATE_ON } else { STATE_OFF }, Ordering::Relaxed);
}

// ---------------------------------------------------------------------------
// Clock, thread ids, trace ids

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

fn now_ns() -> u64 {
    epoch().elapsed().as_nanos() as u64
}

thread_local! {
    static TID: Cell<u16> = const { Cell::new(u16::MAX) };
    static TRACE_ID: Cell<u64> = const { Cell::new(0) };
    static DEPTH: Cell<u16> = const { Cell::new(0) };
}

fn thread_tid() -> u16 {
    TID.with(|t| {
        let v = t.get();
        if v != u16::MAX {
            return v;
        }
        static NEXT: AtomicU64 = AtomicU64::new(0);
        let v = (NEXT.fetch_add(1, Ordering::Relaxed) % u64::from(u16::MAX)) as u16;
        t.set(v);
        v
    })
}

static NEXT_TRACE_ID: AtomicU64 = AtomicU64::new(1);

/// Allocate a fresh nonzero trace id (process-unique).
pub fn next_trace_id() -> u64 {
    NEXT_TRACE_ID.fetch_add(1, Ordering::Relaxed)
}

/// The trace id events on this thread are tagged with (0 = untagged).
pub fn current_trace_id() -> u64 {
    TRACE_ID.with(Cell::get)
}

/// Tag this thread's events with `id` until the returned guard drops,
/// then restore the previous id. Used by service workers to scope a
/// compile's spans to its request.
pub fn trace_id_scope(id: u64) -> TraceIdScope {
    let prev = TRACE_ID.with(|t| t.replace(id));
    TraceIdScope { prev }
}

/// RAII guard restoring the previous thread trace id. See [`trace_id_scope`].
pub struct TraceIdScope {
    prev: u64,
}

impl Drop for TraceIdScope {
    fn drop(&mut self) {
        TRACE_ID.with(|t| t.set(self.prev));
    }
}

// ---------------------------------------------------------------------------
// Name interning

fn names() -> &'static Mutex<Vec<&'static str>> {
    static NAMES: OnceLock<Mutex<Vec<&'static str>>> = OnceLock::new();
    NAMES.get_or_init(|| Mutex::new(Vec::new()))
}

/// Intern a span name, returning its stable index. `span!` caches the
/// result in a per-call-site static so interning happens once per site.
pub fn intern(name: &'static str) -> u32 {
    let mut table = names().lock().expect("trace name table lock");
    if let Some(i) = table.iter().position(|n| *n == name) {
        return i as u32;
    }
    table.push(name);
    (table.len() - 1) as u32
}

fn name_for(idx: u32) -> &'static str {
    names().lock().expect("trace name table lock").get(idx as usize).copied().unwrap_or("?")
}

// ---------------------------------------------------------------------------
// The ring

struct Slot {
    /// Seqlock word, generation-encoded: `2*gen` = slot free for generation
    /// `gen`, `2*gen + 1` = writer of generation `gen` mid-publish,
    /// `2*(gen+1)` = generation `gen` published.
    seq: AtomicU64,
    /// `name_idx << 32 | tid << 16 | depth`.
    meta: AtomicU64,
    ts_ns: AtomicU64,
    dur_ns: AtomicU64,
    trace_id: AtomicU64,
}

struct Ring {
    slots: Vec<Slot>,
    mask: u64,
    shift: u32,
    tickets: AtomicU64,
    dropped: AtomicU64,
}

fn ring() -> &'static Ring {
    static RING: OnceLock<Ring> = OnceLock::new();
    RING.get_or_init(|| {
        let requested = std::env::var("PARALLAX_TRACE_EVENTS")
            .ok()
            .and_then(|v| v.parse::<u64>().ok())
            .unwrap_or(65_536);
        let cap = requested.clamp(1_024, 1 << 22).next_power_of_two();
        Ring {
            slots: (0..cap)
                .map(|_| Slot {
                    seq: AtomicU64::new(0),
                    meta: AtomicU64::new(0),
                    ts_ns: AtomicU64::new(0),
                    dur_ns: AtomicU64::new(0),
                    trace_id: AtomicU64::new(0),
                })
                .collect(),
            mask: cap - 1,
            shift: cap.trailing_zeros(),
            tickets: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
        }
    })
}

/// Events dropped because a writer lapped a still-publishing predecessor.
pub fn dropped_events() -> u64 {
    ring().dropped.load(Ordering::Relaxed)
}

fn record_event(name_idx: u32, tid: u16, depth: u16, ts_ns: u64, dur_ns: u64, trace_id: u64) {
    let r = ring();
    let ticket = r.tickets.fetch_add(1, Ordering::Relaxed);
    let slot = &r.slots[(ticket & r.mask) as usize];
    let gen = ticket >> r.shift;
    // The ticket gives this writer exclusive right to generation `gen` of
    // the slot, but the writer of generation `gen - 1` may still be
    // publishing. Rather than spin, drop the event: memory stays bounded
    // and the path stays wait-free.
    if slot
        .seq
        .compare_exchange(2 * gen, 2 * gen + 1, Ordering::Acquire, Ordering::Relaxed)
        .is_err()
    {
        r.dropped.fetch_add(1, Ordering::Relaxed);
        return;
    }
    let meta = (u64::from(name_idx) << 32) | (u64::from(tid) << 16) | u64::from(depth);
    slot.meta.store(meta, Ordering::Relaxed);
    slot.ts_ns.store(ts_ns, Ordering::Relaxed);
    slot.dur_ns.store(dur_ns, Ordering::Relaxed);
    slot.trace_id.store(trace_id, Ordering::Relaxed);
    slot.seq.store(2 * (gen + 1), Ordering::Release);
}

/// One completed span copied out of the ring.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Interned span name.
    pub name: &'static str,
    /// Process-local thread id of the recording thread.
    pub tid: u16,
    /// Span nesting depth on that thread when the span opened (0 = root).
    pub depth: u16,
    /// Start time, ns since the process trace epoch.
    pub ts_ns: u64,
    /// Duration in ns.
    pub dur_ns: u64,
    /// Trace id the thread was tagged with (0 = untagged).
    pub trace_id: u64,
    /// Global completion order (ring ticket).
    pub order: u64,
}

/// Copy every published, untorn event out of the ring, ordered by start
/// timestamp (ties by completion order).
pub fn snapshot_events() -> Vec<TraceEvent> {
    let r = ring();
    let mut out = Vec::new();
    for (idx, slot) in r.slots.iter().enumerate() {
        let seq = slot.seq.load(Ordering::Acquire);
        if seq == 0 || seq % 2 == 1 {
            continue; // never written, or mid-publish
        }
        let meta = slot.meta.load(Ordering::Relaxed);
        let ts_ns = slot.ts_ns.load(Ordering::Relaxed);
        let dur_ns = slot.dur_ns.load(Ordering::Relaxed);
        let trace_id = slot.trace_id.load(Ordering::Relaxed);
        if slot.seq.load(Ordering::Acquire) != seq {
            continue; // torn: a writer republished while we copied
        }
        let gen = seq / 2 - 1;
        out.push(TraceEvent {
            name: name_for((meta >> 32) as u32),
            tid: ((meta >> 16) & 0xffff) as u16,
            depth: (meta & 0xffff) as u16,
            ts_ns,
            dur_ns,
            trace_id,
            order: (gen << r.shift) | idx as u64,
        });
    }
    out.sort_by_key(|e| (e.ts_ns, e.order));
    out
}

/// The events of one request, grouped by trace id.
#[derive(Debug, Clone)]
pub struct TraceTree {
    /// The trace id shared by all events below.
    pub trace_id: u64,
    /// The trace's events, ordered by start timestamp.
    pub events: Vec<TraceEvent>,
}

/// The last `n` distinct traces still resident in the ring (most recent
/// first, judged by each trace's latest event). Untagged events
/// (`trace_id == 0`) are excluded.
pub fn recent_traces(n: usize) -> Vec<TraceTree> {
    let events = snapshot_events();
    let mut by_id: std::collections::BTreeMap<u64, Vec<TraceEvent>> = Default::default();
    for e in events {
        if e.trace_id != 0 {
            by_id.entry(e.trace_id).or_default().push(e);
        }
    }
    let mut trees: Vec<TraceTree> =
        by_id.into_iter().map(|(trace_id, events)| TraceTree { trace_id, events }).collect();
    trees.sort_by_key(|t| std::cmp::Reverse(t.events.iter().map(|e| e.ts_ns).max().unwrap_or(0)));
    trees.truncate(n);
    trees
}

// ---------------------------------------------------------------------------
// Spans

/// An open span; records a complete event into the ring when dropped.
/// Inert (zero further cost) when tracing was disabled at open.
pub struct Span {
    start_ns: u64,
    name_idx: u32,
    depth: u16,
    active: bool,
}

impl Span {
    /// Open a span through a per-call-site interning cache; used by the
    /// [`span!`](crate::span) macro.
    #[inline]
    pub fn enter_interned(cache: &'static OnceLock<u32>, name: &'static str) -> Span {
        if !enabled() {
            return Span { start_ns: 0, name_idx: 0, depth: 0, active: false };
        }
        Self::enter_idx(*cache.get_or_init(|| intern(name)))
    }

    /// Open a span with an already-interned name index.
    pub fn enter_idx(name_idx: u32) -> Span {
        if !enabled() {
            return Span { start_ns: 0, name_idx: 0, depth: 0, active: false };
        }
        let depth = DEPTH.with(|d| {
            let v = d.get();
            d.set(v.saturating_add(1));
            v
        });
        Span { start_ns: now_ns(), name_idx, depth, active: true }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if !self.active {
            return;
        }
        DEPTH.with(|d| d.set(d.get().saturating_sub(1)));
        let dur = now_ns().saturating_sub(self.start_ns);
        record_event(
            self.name_idx,
            thread_tid(),
            self.depth,
            self.start_ns,
            dur,
            current_trace_id(),
        );
    }
}

/// Open a named span that lasts until the returned guard drops.
///
/// ```
/// let _s = parallax_trace::span!("schedule.movement");
/// // ... traced work ...
/// ```
///
/// The name is interned once per call site; when tracing is disabled the
/// whole expression is one relaxed atomic load.
#[macro_export]
macro_rules! span {
    ($name:expr) => {{
        static __PARALLAX_SPAN_NAME: std::sync::OnceLock<u32> = std::sync::OnceLock::new();
        $crate::Span::enter_interned(&__PARALLAX_SPAN_NAME, $name)
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_record_nesting_and_trace_ids() {
        set_enabled(true);
        let id = next_trace_id();
        {
            let _scope = trace_id_scope(id);
            let _outer = crate::span!("ringtest.outer");
            let _inner = crate::span!("ringtest.inner");
        }
        set_enabled(false);
        let events: Vec<_> = snapshot_events().into_iter().filter(|e| e.trace_id == id).collect();
        assert_eq!(events.len(), 2);
        let outer = events.iter().find(|e| e.name == "ringtest.outer").unwrap();
        let inner = events.iter().find(|e| e.name == "ringtest.inner").unwrap();
        assert_eq!(outer.depth, 0);
        assert_eq!(inner.depth, 1);
        assert!(inner.ts_ns >= outer.ts_ns);
        assert!(inner.ts_ns + inner.dur_ns <= outer.ts_ns + outer.dur_ns);
        assert_eq!(outer.tid, inner.tid);
    }

    #[test]
    fn trace_id_scope_restores_previous() {
        let before = current_trace_id();
        {
            let _a = trace_id_scope(77);
            assert_eq!(current_trace_id(), 77);
            {
                let _b = trace_id_scope(88);
                assert_eq!(current_trace_id(), 88);
            }
            assert_eq!(current_trace_id(), 77);
        }
        assert_eq!(current_trace_id(), before);
    }

    #[test]
    fn disabled_spans_are_inert() {
        set_enabled(false);
        let before = snapshot_events().len();
        {
            let _s = crate::span!("ringtest.disabled");
        }
        assert_eq!(snapshot_events().len(), before);
    }

    #[test]
    fn interning_is_stable() {
        let a = intern("ringtest.stable");
        let b = intern("ringtest.stable");
        assert_eq!(a, b);
        assert_eq!(name_for(a), "ringtest.stable");
    }
}
