//! Observability layer for the Parallax stack.
//!
//! Three pieces, all std-only with zero dependencies so every crate in the
//! workspace can depend on this one:
//!
//! - [`ring`] / [`span!`]: lock-free structured span tracing — nested,
//!   timestamped spans recorded into a bounded ring buffer, tagged with
//!   per-request trace ids, costing one relaxed atomic load when disabled.
//! - [`registry`]: the unified metrics registry — named, labeled counters,
//!   gauges, and fixed-bucket histograms with Prometheus text exposition,
//!   absorbing the stage timers, service counters, and cache statistics
//!   that used to live in scattered per-crate atomics.
//! - [`chrome`]: Chrome trace-event JSON export of ring contents, loadable
//!   in `chrome://tracing` / Perfetto.
//!
//! The cardinal rule: **observability never changes compile output.** Spans
//! only read clocks and write to side buffers; metrics only bump atomics.
//! The umbrella crate's differential tests byte-diff traced vs untraced
//! compile payloads to enforce this.

pub mod chrome;
pub mod registry;
pub mod ring;

pub use chrome::{export_chrome, validate_nesting};
pub use registry::{
    counter, gauge, histogram, register_collector, render_prometheus, render_prometheus_filtered,
    Collector, Counter, Gauge, Histogram, Sample, SampleKind,
};
pub use ring::{
    current_trace_id, dropped_events, enabled, intern, next_trace_id, recent_traces, set_enabled,
    snapshot_events, trace_id_scope, Span, TraceEvent, TraceIdScope, TraceTree,
};
