//! Chrome trace-event JSON export.
//!
//! Renders ring-buffer events as the Trace Event Format's "X" (complete)
//! events, loadable in `chrome://tracing` or Perfetto. Timestamps and
//! durations are microseconds; nesting is implied by containment of
//! `[ts, ts+dur]` intervals per thread, which holds by construction for
//! same-thread spans recorded by this crate.

use crate::ring::TraceEvent;

/// Render events as a Chrome trace-event JSON document.
pub fn export_chrome(events: &[TraceEvent]) -> String {
    let mut out = String::from("{\"traceEvents\":[");
    for (i, e) in events.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        // Name strings are interned `&'static str` literals from `span!`
        // sites; escape anyway so exotic names can't corrupt the document.
        let mut name = String::new();
        for ch in e.name.chars() {
            match ch {
                '"' => name.push_str("\\\""),
                '\\' => name.push_str("\\\\"),
                c if (c as u32) < 0x20 => name.push_str(&format!("\\u{:04x}", c as u32)),
                c => name.push(c),
            }
        }
        out.push_str(&format!(
            "{{\"ph\":\"X\",\"pid\":1,\"tid\":{},\"ts\":{}.{:03},\"dur\":{}.{:03},\
             \"name\":\"{}\",\"args\":{{\"trace_id\":\"{:016x}\",\"depth\":{}}}}}",
            e.tid,
            e.ts_ns / 1_000,
            e.ts_ns % 1_000,
            e.dur_ns / 1_000,
            e.dur_ns % 1_000,
            name,
            e.trace_id,
            e.depth,
        ));
    }
    out.push_str("],\"displayTimeUnit\":\"ms\"}");
    out
}

/// Check that per-thread spans nest: sorted by start time, every span at
/// depth `d+1` must lie within the most recent still-open span at depth
/// `d` on the same thread. Returns the first violation as an error string.
/// Used by tests and the CI traced-smoke step.
pub fn validate_nesting(events: &[TraceEvent]) -> Result<(), String> {
    use std::collections::BTreeMap;
    let mut sorted: Vec<&TraceEvent> = events.iter().collect();
    sorted.sort_by_key(|e| (e.tid, e.ts_ns, std::cmp::Reverse(e.dur_ns)));
    // Per-thread stack of open (end_ns, depth) intervals.
    let mut stacks: BTreeMap<u16, Vec<(u64, u16)>> = BTreeMap::new();
    for e in sorted {
        let stack = stacks.entry(e.tid).or_default();
        while let Some(&(end, _)) = stack.last() {
            if e.ts_ns >= end {
                stack.pop();
            } else {
                break;
            }
        }
        if let Some(&(end, depth)) = stack.last() {
            let self_end = e.ts_ns + e.dur_ns;
            if self_end > end {
                return Err(format!(
                    "span '{}' (tid {}) overruns its parent: ends {} > parent end {}",
                    e.name, e.tid, self_end, end
                ));
            }
            if e.depth != depth + 1 {
                return Err(format!(
                    "span '{}' (tid {}) has depth {} inside a depth-{} parent",
                    e.name, e.tid, e.depth, depth
                ));
            }
        } else if e.depth != 0 {
            return Err(format!(
                "span '{}' (tid {}) has depth {} with no enclosing span",
                e.name, e.tid, e.depth
            ));
        }
        stack.push((e.ts_ns + e.dur_ns, e.depth));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ring::TraceEvent;

    fn ev(name: &'static str, tid: u16, depth: u16, ts: u64, dur: u64) -> TraceEvent {
        TraceEvent { name, tid, depth, ts_ns: ts, dur_ns: dur, trace_id: 1, order: ts }
    }

    #[test]
    fn export_emits_complete_events() {
        let events = vec![ev("compile", 0, 0, 1_000, 9_000), ev("schedule", 0, 1, 2_000, 3_500)];
        let json = export_chrome(&events);
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"name\":\"compile\""));
        assert!(json.contains("\"ts\":1.000"));
        assert!(json.contains("\"dur\":3.500"));
        assert!(json.contains("\"trace_id\":\"0000000000000001\""));
    }

    #[test]
    fn nesting_accepts_contained_spans() {
        let events = vec![
            ev("root", 0, 0, 0, 100),
            ev("mid", 0, 1, 10, 50),
            ev("leaf", 0, 2, 20, 10),
            ev("root2", 0, 0, 200, 50),
            ev("other-thread", 1, 0, 15, 1_000),
        ];
        assert!(validate_nesting(&events).is_ok());
    }

    #[test]
    fn nesting_rejects_overrun_and_bad_depth() {
        let overrun = vec![ev("root", 0, 0, 0, 100), ev("late", 0, 1, 90, 50)];
        assert!(validate_nesting(&overrun).is_err());
        let bad_depth = vec![ev("root", 0, 0, 0, 100), ev("skip", 0, 2, 10, 20)];
        assert!(validate_nesting(&bad_depth).is_err());
        let orphan = vec![ev("orphan", 0, 1, 0, 10)];
        assert!(validate_nesting(&orphan).is_err());
    }
}
