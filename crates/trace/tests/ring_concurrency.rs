//! Ring-buffer concurrency: 8 writer threads hammer `span!` while a reader
//! snapshots continuously. The seqlock discipline must never surface a torn
//! event, and memory must stay bounded (lapped writers drop, not grow).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

const WRITERS: usize = 8;
const SPANS_PER_WRITER: usize = 20_000;

#[test]
fn concurrent_writers_no_torn_events_bounded_memory() {
    parallax_trace::set_enabled(true);

    // Each writer uses a distinct name and a distinct trace id, so a torn
    // event would show up as an impossible (name, trace_id) combination.
    let names: [&'static str; WRITERS] = [
        "ringcc.w0",
        "ringcc.w1",
        "ringcc.w2",
        "ringcc.w3",
        "ringcc.w4",
        "ringcc.w5",
        "ringcc.w6",
        "ringcc.w7",
    ];
    let base_id = parallax_trace::next_trace_id() + 1_000_000;

    let stop = Arc::new(AtomicBool::new(false));
    let reader = {
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut snapshots = 0u64;
            while !stop.load(Ordering::Relaxed) {
                let events = parallax_trace::snapshot_events();
                for e in &events {
                    if let Some(writer) = e.name.strip_prefix("ringcc.w") {
                        let w: u64 = writer.parse().unwrap();
                        assert_eq!(
                            e.trace_id,
                            base_id + w,
                            "torn event: name {} paired with trace id {:#x}",
                            e.name,
                            e.trace_id
                        );
                    }
                }
                snapshots += 1;
            }
            snapshots
        })
    };

    let writers: Vec<_> = (0..WRITERS)
        .map(|w| {
            let name = names[w];
            std::thread::spawn(move || {
                let _scope = parallax_trace::trace_id_scope(base_id + w as u64);
                let idx = parallax_trace::intern(name);
                for _ in 0..SPANS_PER_WRITER {
                    let _s = parallax_trace::Span::enter_idx(idx);
                }
            })
        })
        .collect();

    for w in writers {
        w.join().unwrap();
    }
    stop.store(true, Ordering::Relaxed);
    let snapshots = reader.join().unwrap();
    assert!(snapshots > 0);

    parallax_trace::set_enabled(false);

    // Bounded memory: the ring can never hold more events than its capacity
    // (max 2^22 even if PARALLAX_TRACE_EVENTS is huge), regardless of how
    // many spans were recorded. Every event we wrote either resides in the
    // ring, was overwritten, or was counted as dropped.
    let events = parallax_trace::snapshot_events();
    assert!(events.len() <= 1 << 22, "ring grew past its capacity: {}", events.len());

    // A final snapshot is untorn by the same pairing argument.
    for e in &events {
        if let Some(writer) = e.name.strip_prefix("ringcc.w") {
            let w: u64 = writer.parse().unwrap();
            assert_eq!(e.trace_id, base_id + w);
        }
    }
}
