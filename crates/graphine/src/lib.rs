//! GRAPHINE-style application-specific atom placement.
//!
//! Reimplements the placement stage of GRAPHINE (Patel et al., SC 2023)
//! that the Parallax paper uses both as step 1 of its own pipeline and as a
//! comparison baseline: the input circuit becomes a weighted interaction
//! graph ([`graph`]), dual annealing embeds it in the `[0,1]^2` plane
//! ([`placement`]), and the Rydberg interaction radius is chosen as the
//! smallest radius keeping all atoms mutually reachable ([`radius`] — the
//! longest Euclidean-MST edge).
//!
//! The placement hot path is engineered for repeat traffic: the annealer's
//! inner loops are allocation-free with an incremental energy table
//! (bit-identical to the reference objective), restart streams parallelize
//! deterministically ([`PlacementConfig::restarts`] / `workers`), and
//! `parallax-core` caches finished layouts by (interaction-graph hash,
//! machine fingerprint, [`PlacementConfig::fingerprint`]) so near-miss
//! compilations skip the anneal entirely. Measured effect on the fixed-seed
//! end-to-end benches (10-sample means, same machine, this change set):
//!
//! | Bench | before | after | speedup |
//! |-------|--------|-------|---------|
//! | `table4/compile_runtime/TFIM/Atom-1225` | 1.30 s | 201 ms | 6.5x |
//! | `table4/compile_runtime/QEC/QuEra-256`  | 5.9 ms | 2.2 ms | 2.7x |
//! | `table4/compile_runtime/QEC/Atom-1225`  | 5.3 ms | 2.1 ms | 2.5x |
//! | `fig9/compare/ADD`                      | 2.7 ms | 0.7 ms | 4.0x |
//! | `fig9/compare/QAOA`                     | 5.0 ms | 2.0 ms | 2.5x |
//! | `fig9/compare/QFT`                      | 14.6 ms | 6.1 ms | 2.4x |
//!
//! For 1000+ qubit machines the graph side is CSR: [`graph::CsrAdjacency`]
//! (via `InteractionGraph::csr()`) lays per-qubit incidence out as offsets
//! plus parallel neighbor/weight/edge-id/degree lanes, consumed by the
//! energy table, the discretizer's degree ordering, connectivity, and the
//! ELDI baseline. `edges` stays the canonical representation and the sole
//! `stable_hash` input, so cache keys are unchanged; proptests diff every
//! CSR row against the nested builders (`docs/DATA_LAYOUT.md`).
//!
//! # Example
//! ```
//! use parallax_circuit::CircuitBuilder;
//! use parallax_graphine::{GraphineLayout, PlacementConfig};
//!
//! let mut b = CircuitBuilder::new(4);
//! b.cx(0, 1).cx(1, 2).cx(2, 3);
//! let layout = GraphineLayout::generate(&b.build(), &PlacementConfig::quick(0));
//! assert_eq!(layout.positions.len(), 4);
//! assert!(layout.interaction_radius > 0.0);
//! ```

pub mod graph;
pub mod placement;
pub mod radius;
mod stable;

pub use graph::{CsrAdjacency, InteractionGraph};
pub use placement::{place, placement_energy, EnergyTable, Placement, PlacementConfig};
pub use radius::{connecting_radius, is_geometrically_connected};

use parallax_circuit::Circuit;

/// The full GRAPHINE output: annealed positions plus interaction radius.
#[derive(Debug, Clone, PartialEq)]
pub struct GraphineLayout {
    /// Per-qubit normalized `(x, y)` positions in `[0,1]^2`.
    pub positions: Vec<(f64, f64)>,
    /// Rydberg interaction radius in the same normalized units: the minimal
    /// radius under which the placed qubits form a connected graph.
    pub interaction_radius: f64,
    /// Final placement objective value (for diagnostics).
    pub energy: f64,
    /// Annealer objective evaluations spent producing this layout.
    pub anneal_evals: usize,
    /// Annealer heap allocations (see [`Placement::allocs`]).
    pub anneal_allocs: usize,
}

impl GraphineLayout {
    /// Run the full GRAPHINE pipeline on `circuit`.
    pub fn generate(circuit: &Circuit, config: &PlacementConfig) -> Self {
        Self::from_graph(&InteractionGraph::from_circuit(circuit), config)
    }

    /// Run placement + radius selection on a pre-built interaction graph
    /// (lets callers that already hashed the graph for the layout cache
    /// avoid rebuilding it).
    pub fn from_graph(graph: &InteractionGraph, config: &PlacementConfig) -> Self {
        let sp = parallax_trace::span!("placement.anneal");
        let placement = place(graph, config);
        drop(sp);
        let sp = parallax_trace::span!("placement.radius");
        let interaction_radius = connecting_radius(&placement.positions);
        drop(sp);
        Self {
            positions: placement.positions,
            interaction_radius,
            energy: placement.energy,
            anneal_evals: placement.evals,
            anneal_allocs: placement.allocs,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parallax_circuit::CircuitBuilder;

    #[test]
    fn layout_radius_connects_all_qubits() {
        let mut b = CircuitBuilder::new(5);
        b.cx(0, 1).cx(1, 2).cx(2, 3).cx(3, 4).cx(0, 4);
        let layout = GraphineLayout::generate(&b.build(), &PlacementConfig::quick(2));
        assert!(is_geometrically_connected(&layout.positions, layout.interaction_radius));
    }

    #[test]
    fn single_qubit_layout() {
        let b = CircuitBuilder::new(1);
        let layout = GraphineLayout::generate(&b.build(), &PlacementConfig::quick(0));
        assert_eq!(layout.positions, vec![(0.5, 0.5)]);
        assert_eq!(layout.interaction_radius, 0.0);
    }
}
