//! Minimal stable hashing for cache keys.
//!
//! FNV-1a over little-endian 64-bit words: stable across processes,
//! platforms, and Rust versions (unlike `DefaultHasher`), and dependency-
//! free — this crate sits below `parallax-hardware`, whose `StableHasher`
//! serves the same role higher in the stack.

/// Word-at-a-time FNV-1a hasher.
pub(crate) struct WordHasher(u64);

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

impl WordHasher {
    /// Start a fresh hash.
    pub fn new() -> Self {
        Self(FNV_OFFSET)
    }

    /// Mix one 64-bit word (as its little-endian bytes).
    pub fn word(&mut self, v: u64) -> &mut Self {
        for b in v.to_le_bytes() {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(FNV_PRIME);
        }
        self
    }

    /// The accumulated hash.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_reference_fnv1a_on_byte_stream() {
        // FNV-1a of the 8 little-endian bytes of 0x01 equals hashing the
        // byte string 01 00 00 00 00 00 00 00.
        let mut h = WordHasher::new();
        h.word(1);
        let mut expect = FNV_OFFSET;
        for b in 1u64.to_le_bytes() {
            expect = (expect ^ u64::from(b)).wrapping_mul(FNV_PRIME);
        }
        assert_eq!(h.finish(), expect);
    }

    #[test]
    fn order_sensitive() {
        let mut a = WordHasher::new();
        a.word(1).word(2);
        let mut b = WordHasher::new();
        b.word(2).word(1);
        assert_ne!(a.finish(), b.finish());
    }
}
