//! Dual-annealed 2D qubit placement.
//!
//! Section II-A: the circuit graph is embedded in the `[0,1]^2` plane with
//! dual annealing, "optimized to place pairs of qubits with high-weight
//! edges closer together". The objective combines weighted attraction along
//! circuit edges with a short-range repulsion that keeps atoms from
//! stacking (the separation constraint is enforced later by
//! discretization; repulsion merely keeps the annealer's output usable).

use crate::graph::{CsrAdjacency, InteractionGraph};
use crate::stable::WordHasher;
use parallax_anneal::{dual_annealing_multi, AnnealParams, MultiRestartParams};

/// Configuration for the placement annealer.
#[derive(Debug, Clone)]
pub struct PlacementConfig {
    /// RNG seed (deterministic placement for equal seeds).
    pub seed: u64,
    /// Outer annealing iterations.
    pub max_iter: usize,
    /// Evaluation budget per local refinement.
    pub local_search_evals: usize,
    /// Repulsion strength relative to total edge weight.
    pub repulsion_scale: f64,
    /// Independent annealing restart streams (min 1). More streams explore
    /// more basins; the best result wins under a total order, so the
    /// outcome depends only on the seed and this count — never on thread
    /// scheduling. `1` reproduces the single-stream placement exactly.
    pub restarts: usize,
    /// Worker threads for the restart streams (0 = available CPUs). Does
    /// not affect the result, only wall-clock time, and is therefore
    /// excluded from [`Self::fingerprint`].
    pub workers: usize,
}

impl Default for PlacementConfig {
    fn default() -> Self {
        Self {
            seed: 0,
            max_iter: 400,
            local_search_evals: 1500,
            repulsion_scale: 1.0,
            restarts: 1,
            workers: 0,
        }
    }
}

impl PlacementConfig {
    /// Cheap preset for unit tests and debug builds.
    pub fn quick(seed: u64) -> Self {
        Self { seed, max_iter: 80, local_search_evals: 400, ..Default::default() }
    }

    /// Run `restarts` parallel annealing streams instead of one.
    pub fn with_restarts(mut self, restarts: usize) -> Self {
        self.restarts = restarts.max(1);
        self
    }

    /// Stable fingerprint over every knob that steers the annealed result
    /// (floats by bit pattern). `workers` is deliberately excluded: the
    /// worker count never changes the output, so layouts computed at any
    /// parallelism are interchangeable under this key.
    pub fn fingerprint(&self) -> u64 {
        let mut h = WordHasher::new();
        h.word(self.seed)
            .word(self.max_iter as u64)
            .word(self.local_search_evals as u64)
            .word(self.repulsion_scale.to_bits())
            .word(self.restarts.max(1) as u64);
        h.finish()
    }
}

/// Annealed positions in the normalized `[0,1]^2` plane.
#[derive(Debug, Clone, PartialEq)]
pub struct Placement {
    /// Per-qubit `(x, y)` in `[0,1]`.
    pub positions: Vec<(f64, f64)>,
    /// Final objective value.
    pub energy: f64,
    /// Objective evaluations spent (summed across restart streams).
    pub evals: usize,
    /// Heap allocations the annealer performed (summed across streams);
    /// stays tiny because the inner loops are allocation-free.
    pub allocs: usize,
}

/// The placement objective: weighted squared edge lengths plus soft-core
/// repulsion below the target spacing `r0 ~ 1/sqrt(q)`.
///
/// This is the reference (always-recompute) form, O(E + q²) including the
/// per-pair `sqrt`. The annealer's hot loop uses [`EnergyTable`], which
/// produces bit-identical values while recomputing only the terms a move
/// actually changed.
pub fn placement_energy(
    positions: &[(f64, f64)],
    graph: &InteractionGraph,
    repulsion_scale: f64,
) -> f64 {
    let q = graph.num_qubits.max(1);
    let r0 = 0.8 / (q as f64).sqrt();
    let mut e = 0.0;
    for &(a, b, w) in &graph.edges {
        let (pa, pb) = (positions[a as usize], positions[b as usize]);
        let dx = pa.0 - pb.0;
        let dy = pa.1 - pb.1;
        e += w * (dx * dx + dy * dy);
    }
    // Repulsion competes with the attraction on equal footing: scale by the
    // mean edge weight so dense circuits do not collapse.
    let lambda = repulsion_lambda(graph, repulsion_scale);
    for i in 0..positions.len() {
        for j in (i + 1)..positions.len() {
            let dx = positions[i].0 - positions[j].0;
            let dy = positions[i].1 - positions[j].1;
            let d = (dx * dx + dy * dy).sqrt();
            if d < r0 {
                let overlap = (r0 - d) / r0;
                e += lambda * overlap * overlap;
            }
        }
    }
    e
}

fn repulsion_lambda(graph: &InteractionGraph, repulsion_scale: f64) -> f64 {
    repulsion_scale * (graph.total_weight() / graph.edges.len().max(1) as f64).max(1.0) * 4.0
}

/// Incrementally-updated term table for [`placement_energy`].
///
/// The annealer evaluates the objective tens of thousands of times, and
/// most evaluations (every pattern-search probe, every odd annealing step)
/// move a *single coordinate* — yet the naive objective recomputes all
/// O(q²) pairwise distances each call, the dominant placement cost flagged
/// on the ROADMAP. The table caches every edge and pair term and, when a
/// new candidate differs from the previous one in only a few qubits,
/// recomputes just the terms touching those qubits (O(changed · q) square
/// roots instead of O(q²)).
///
/// The total is then re-summed from the cached terms **in the exact
/// accumulation order of [`placement_energy`]** — edge terms in edge order,
/// then pair terms in `(i, j), i < j` lexicographic order, with out-of-range
/// pairs contributing a literal `+0.0` (bitwise identity on the
/// non-negative totals that arise here) — so the result is bit-identical to
/// the reference form and seeded annealing trajectories are unchanged.
#[derive(Debug, Clone)]
pub struct EnergyTable<'g> {
    graph: &'g InteractionGraph,
    r0: f64,
    lambda: f64,
    /// Positions of the previous evaluation (term cache validity).
    cached: Vec<(f64, f64)>,
    /// Per-edge attraction terms, in `graph.edges` order.
    edge_terms: Vec<f64>,
    /// Per-pair repulsion terms, upper triangle in row-major `(i, j)` order.
    pair_terms: Vec<f64>,
    /// CSR adjacency (per-qubit incident-edge ids in ascending edge order —
    /// the same iteration order the nested `qubit_edges: Vec<Vec<usize>>`
    /// it replaced produced, so updates touch terms identically).
    adj: CsrAdjacency,
    /// Scratch: indices of qubits that moved since the previous evaluation.
    changed: Vec<usize>,
    primed: bool,
}

impl<'g> EnergyTable<'g> {
    /// Build an empty table for `graph`; the first [`Self::eval`] primes it
    /// with a full recomputation.
    pub fn new(graph: &'g InteractionGraph, repulsion_scale: f64) -> Self {
        let q = graph.num_qubits;
        Self {
            graph,
            r0: 0.8 / (q.max(1) as f64).sqrt(),
            lambda: repulsion_lambda(graph, repulsion_scale),
            cached: Vec::new(),
            edge_terms: vec![0.0; graph.edges.len()],
            pair_terms: vec![0.0; q * q.saturating_sub(1) / 2],
            adj: graph.csr(),
            changed: Vec::new(),
            primed: false,
        }
    }

    /// Index of pair `(i, j)` with `i < j` in the row-major upper triangle.
    #[inline]
    fn pair_index(&self, i: usize, j: usize) -> usize {
        debug_assert!(i < j);
        let q = self.graph.num_qubits;
        i * (2 * q - i - 1) / 2 + (j - i - 1)
    }

    #[inline]
    fn edge_term(&self, e: usize, positions: &[(f64, f64)]) -> f64 {
        let (a, b, w) = self.graph.edges[e];
        let (pa, pb) = (positions[a as usize], positions[b as usize]);
        let dx = pa.0 - pb.0;
        let dy = pa.1 - pb.1;
        w * (dx * dx + dy * dy)
    }

    #[inline]
    fn pair_term(&self, i: usize, j: usize, positions: &[(f64, f64)]) -> f64 {
        let dx = positions[i].0 - positions[j].0;
        let dy = positions[i].1 - positions[j].1;
        let d = (dx * dx + dy * dy).sqrt();
        if d < self.r0 {
            let overlap = (self.r0 - d) / self.r0;
            self.lambda * overlap * overlap
        } else {
            0.0
        }
    }

    fn recompute_all(&mut self, positions: &[(f64, f64)]) {
        for e in 0..self.graph.edges.len() {
            self.edge_terms[e] = self.edge_term(e, positions);
        }
        let q = positions.len();
        let mut k = 0;
        for i in 0..q {
            for j in (i + 1)..q {
                self.pair_terms[k] = self.pair_term(i, j, positions);
                k += 1;
            }
        }
        self.cached.clear();
        self.cached.extend_from_slice(positions);
        self.primed = true;
    }

    fn update_changed(&mut self, positions: &[(f64, f64)]) {
        // Borrow-splitting dance: walk the CSR row per changed qubit
        // through an index loop (the adjacency is disjoint from the term
        // tables, but the borrow checker can't see that through &mut self).
        for c in 0..self.changed.len() {
            let qubit = self.changed[c];
            for k in 0..self.adj.edge_ids(qubit).len() {
                let e = self.adj.edge_ids(qubit)[k] as usize;
                self.edge_terms[e] = self.edge_term(e, positions);
            }
            for other in 0..positions.len() {
                if other == qubit {
                    continue;
                }
                let (i, j) = (qubit.min(other), qubit.max(other));
                let idx = self.pair_index(i, j);
                self.pair_terms[idx] = self.pair_term(i, j, positions);
            }
            self.cached[qubit] = positions[qubit];
        }
    }

    /// Evaluate the placement energy at `positions`, reusing every cached
    /// term that no moved qubit touches. Bit-identical to
    /// [`placement_energy`] on the same inputs.
    pub fn eval(&mut self, positions: &[(f64, f64)]) -> f64 {
        let q = self.graph.num_qubits;
        debug_assert_eq!(positions.len(), q);
        if !self.primed || positions.len() != self.cached.len() {
            self.recompute_all(positions);
        } else {
            self.changed.clear();
            for (i, (new, old)) in positions.iter().zip(&self.cached).enumerate() {
                // Bitwise comparison: a NaN (which `!=` would call unequal
                // even when unchanged) still lands in the safe "recompute"
                // branch.
                if new.0.to_bits() != old.0.to_bits() || new.1.to_bits() != old.1.to_bits() {
                    self.changed.push(i);
                }
            }
            // A full-dimensional move touches every term; recomputing the
            // whole table in one pass is cheaper than q rows of updates.
            if 2 * self.changed.len() > q {
                self.recompute_all(positions);
            } else if !self.changed.is_empty() {
                self.update_changed(positions);
            }
        }
        let mut e = 0.0;
        for &t in &self.edge_terms {
            e += t;
        }
        for &t in &self.pair_terms {
            e += t;
        }
        e
    }
}

/// Run the annealed placement for `graph`.
///
/// With `config.restarts > 1` this fans the independent restart streams out
/// over a scoped worker pool; each stream gets a private [`EnergyTable`]
/// and scratch buffer, and the reduction's total order keeps the result
/// bit-identical for a given seed at any worker count.
pub fn place(graph: &InteractionGraph, config: &PlacementConfig) -> Placement {
    let q = graph.num_qubits;
    if q == 0 {
        return Placement { positions: Vec::new(), energy: 0.0, evals: 0, allocs: 0 };
    }
    if q == 1 {
        return Placement { positions: vec![(0.5, 0.5)], energy: 0.0, evals: 0, allocs: 1 };
    }
    let bounds = vec![(0.0, 1.0); 2 * q];
    let params = MultiRestartParams {
        base: AnnealParams {
            seed: config.seed,
            max_iter: config.max_iter,
            local_search_evals: config.local_search_evals,
            ..Default::default()
        },
        restarts: config.restarts.max(1),
        workers: config.workers,
    };
    // Each stream owns a table that keeps the annealer's single-coordinate
    // probes O(q) instead of O(q²) while returning bit-identical energies
    // (see [`EnergyTable`]), plus a scratch buffer so the hot loop never
    // allocates.
    let result = dual_annealing_multi(
        || {
            let mut scratch = vec![(0.0f64, 0.0f64); q];
            let mut table = EnergyTable::new(graph, config.repulsion_scale);
            move |x: &[f64]| {
                for (i, s) in scratch.iter_mut().enumerate() {
                    *s = (x[2 * i], x[2 * i + 1]);
                }
                table.eval(&scratch)
            }
        },
        &bounds,
        &params,
    );
    let positions = (0..q).map(|i| (result.x[2 * i], result.x[2 * i + 1])).collect::<Vec<_>>();
    Placement { positions, energy: result.energy, evals: result.evals, allocs: result.allocs }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parallax_circuit::CircuitBuilder;

    fn line_graph(weights: &[f64]) -> InteractionGraph {
        InteractionGraph {
            num_qubits: weights.len() + 1,
            edges: weights.iter().enumerate().map(|(i, &w)| (i as u32, i as u32 + 1, w)).collect(),
        }
    }

    fn dist(p: &[(f64, f64)], a: usize, b: usize) -> f64 {
        let dx = p[a].0 - p[b].0;
        let dy = p[a].1 - p[b].1;
        (dx * dx + dy * dy).sqrt()
    }

    #[test]
    fn heavy_edges_end_up_shorter() {
        // Chain 0-1-2 with weight 50 on (0,1) and 1 on (1,2).
        let g = line_graph(&[50.0, 1.0]);
        let p = place(&g, &PlacementConfig::quick(7));
        assert!(
            dist(&p.positions, 0, 1) < dist(&p.positions, 1, 2),
            "heavy edge should be shorter: {:?}",
            p.positions
        );
    }

    #[test]
    fn repulsion_prevents_collapse() {
        let mut b = CircuitBuilder::new(4);
        for i in 0..4u32 {
            for j in (i + 1)..4 {
                b.cz(i, j);
            }
        }
        let g = InteractionGraph::from_circuit(&b.build());
        let p = place(&g, &PlacementConfig::quick(3));
        for i in 0..4 {
            for j in (i + 1)..4 {
                assert!(
                    dist(&p.positions, i, j) > 0.02,
                    "atoms {i},{j} collapsed: {:?}",
                    p.positions
                );
            }
        }
    }

    #[test]
    fn positions_stay_in_unit_square() {
        let g = line_graph(&[1.0, 2.0, 3.0, 4.0]);
        let p = place(&g, &PlacementConfig::quick(11));
        for &(x, y) in &p.positions {
            assert!((0.0..=1.0).contains(&x) && (0.0..=1.0).contains(&y));
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let g = line_graph(&[3.0, 1.0, 2.0]);
        let a = place(&g, &PlacementConfig::quick(5));
        let b = place(&g, &PlacementConfig::quick(5));
        assert_eq!(a, b);
    }

    #[test]
    fn restarts_are_deterministic_at_any_worker_count() {
        let g = line_graph(&[3.0, 1.0, 2.0, 5.0]);
        let config =
            |workers| PlacementConfig { workers, ..PlacementConfig::quick(9).with_restarts(4) };
        let reference = place(&g, &config(1));
        for workers in [2, 4, 8] {
            assert_eq!(place(&g, &config(workers)), reference, "workers={workers}");
        }
        // And the winning energy is never worse than the single stream's.
        let single = place(&g, &PlacementConfig::quick(9));
        assert!(reference.energy <= single.energy);
    }

    #[test]
    fn fingerprint_tracks_result_steering_knobs_only() {
        let base = PlacementConfig::quick(1);
        assert_eq!(base.fingerprint(), PlacementConfig::quick(1).fingerprint());
        assert_ne!(base.fingerprint(), PlacementConfig::quick(2).fingerprint());
        assert_ne!(base.fingerprint(), PlacementConfig::default().fingerprint());
        assert_ne!(base.fingerprint(), base.clone().with_restarts(3).fingerprint());
        let mut scaled = base.clone();
        scaled.repulsion_scale = 2.0;
        assert_ne!(base.fingerprint(), scaled.fingerprint());
        // Worker count never changes the annealed result, so it must not
        // change the fingerprint either (cache keys stay interchangeable).
        let mut threaded = base.clone();
        threaded.workers = 7;
        assert_eq!(base.fingerprint(), threaded.fingerprint());
    }

    #[test]
    fn degenerate_sizes() {
        let g0 = InteractionGraph { num_qubits: 0, edges: vec![] };
        assert!(place(&g0, &PlacementConfig::quick(0)).positions.is_empty());
        let g1 = InteractionGraph { num_qubits: 1, edges: vec![] };
        assert_eq!(place(&g1, &PlacementConfig::quick(0)).positions, vec![(0.5, 0.5)]);
    }

    #[test]
    fn energy_decreases_with_shorter_heavy_edges() {
        let g = line_graph(&[10.0]);
        let near = placement_energy(&[(0.4, 0.5), (0.6, 0.5)], &g, 1.0);
        let far = placement_energy(&[(0.0, 0.0), (1.0, 1.0)], &g, 1.0);
        assert!(near < far);
    }

    /// Deterministic pseudo-random stream (no RNG needed for coverage).
    fn lcg(state: &mut u64) -> f64 {
        *state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        (*state >> 11) as f64 / (1u64 << 53) as f64
    }

    #[test]
    fn energy_table_is_bit_identical_to_reference() {
        // A denser graph than a line: ring + chords, 12 qubits.
        let mut edges = Vec::new();
        for i in 0..12u32 {
            edges.push((i, (i + 1) % 12, 1.0 + i as f64));
            if i % 3 == 0 {
                edges.push((i, (i + 5) % 12, 2.5));
            }
        }
        let g = InteractionGraph { num_qubits: 12, edges };
        let mut table = EnergyTable::new(&g, 1.0);
        let mut state = 42u64;
        let mut pos: Vec<(f64, f64)> =
            (0..12).map(|_| (lcg(&mut state), lcg(&mut state))).collect();
        // Interleave single-qubit nudges (the pattern-search shape), a
        // multi-qubit move, and full re-randomizations (the visiting shape).
        for step in 0..200 {
            match step % 5 {
                0 => {
                    // Full move: every coordinate changes.
                    for p in pos.iter_mut() {
                        *p = (lcg(&mut state), lcg(&mut state));
                    }
                }
                4 => {
                    // Three-qubit move.
                    for k in 0..3 {
                        let i = ((step + k) * 7) % 12;
                        pos[i].0 = lcg(&mut state);
                    }
                }
                _ => {
                    // Single-coordinate nudge.
                    let i = (step * 11) % 12;
                    if step % 2 == 0 {
                        pos[i].0 = lcg(&mut state);
                    } else {
                        pos[i].1 = lcg(&mut state);
                    }
                }
            }
            let incremental = table.eval(&pos);
            let reference = placement_energy(&pos, &g, 1.0);
            assert_eq!(
                incremental.to_bits(),
                reference.to_bits(),
                "step {step}: {incremental} != {reference}"
            );
        }
    }

    /// Manual perf check for the ROADMAP's "placement is O(iters x n^2)"
    /// item (run with `cargo test -p parallax-graphine --release -- --ignored`):
    /// on a 128-qubit TFIM-shaped ring, single-coordinate probes through the
    /// term table must beat the full recompute by a wide margin.
    #[test]
    #[ignore = "timing-sensitive; run manually in release mode"]
    fn tfim128_single_coordinate_probes_are_much_faster() {
        let n = 128;
        let g = InteractionGraph {
            num_qubits: n,
            edges: (0..n as u32).map(|i| (i, (i + 1) % n as u32, 10.0)).collect(),
        };
        let mut state = 7u64;
        let mut pos: Vec<(f64, f64)> = (0..n).map(|_| (lcg(&mut state), lcg(&mut state))).collect();
        let probes = 4000;

        let mut table = EnergyTable::new(&g, 1.0);
        let _ = table.eval(&pos); // prime
        let t0 = std::time::Instant::now();
        let mut acc = 0.0;
        for k in 0..probes {
            pos[k % n].0 = lcg(&mut state);
            acc += table.eval(&pos);
        }
        let incremental = t0.elapsed();

        let t0 = std::time::Instant::now();
        let mut acc2 = 0.0;
        for k in 0..probes {
            pos[k % n].1 = lcg(&mut state);
            acc2 += placement_energy(&pos, &g, 1.0);
        }
        let naive = t0.elapsed();
        assert!(acc.is_finite() && acc2.is_finite());
        let speedup = naive.as_secs_f64() / incremental.as_secs_f64();
        println!("naive {naive:?} / incremental {incremental:?} = {speedup:.1}x");
        assert!(speedup > 1.5, "expected a measurable speedup, got {speedup:.2}x");
    }

    #[test]
    fn energy_table_handles_repeated_and_degenerate_inputs() {
        let g = line_graph(&[1.0, 2.0]);
        let mut table = EnergyTable::new(&g, 1.0);
        let pos = vec![(0.1, 0.2), (0.5, 0.5), (0.9, 0.8)];
        let a = table.eval(&pos);
        let b = table.eval(&pos); // zero qubits changed
        assert_eq!(a.to_bits(), b.to_bits());
        assert_eq!(a.to_bits(), placement_energy(&pos, &g, 1.0).to_bits());

        let g1 = InteractionGraph { num_qubits: 1, edges: vec![] };
        let mut t1 = EnergyTable::new(&g1, 1.0);
        assert_eq!(t1.eval(&[(0.5, 0.5)]), 0.0);
    }
}
