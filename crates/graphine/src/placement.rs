//! Dual-annealed 2D qubit placement.
//!
//! Section II-A: the circuit graph is embedded in the `[0,1]^2` plane with
//! dual annealing, "optimized to place pairs of qubits with high-weight
//! edges closer together". The objective combines weighted attraction along
//! circuit edges with a short-range repulsion that keeps atoms from
//! stacking (the separation constraint is enforced later by
//! discretization; repulsion merely keeps the annealer's output usable).

use crate::graph::InteractionGraph;
use parallax_anneal::{dual_annealing, AnnealParams};

/// Configuration for the placement annealer.
#[derive(Debug, Clone)]
pub struct PlacementConfig {
    /// RNG seed (deterministic placement for equal seeds).
    pub seed: u64,
    /// Outer annealing iterations.
    pub max_iter: usize,
    /// Evaluation budget per local refinement.
    pub local_search_evals: usize,
    /// Repulsion strength relative to total edge weight.
    pub repulsion_scale: f64,
}

impl Default for PlacementConfig {
    fn default() -> Self {
        Self { seed: 0, max_iter: 400, local_search_evals: 1500, repulsion_scale: 1.0 }
    }
}

impl PlacementConfig {
    /// Cheap preset for unit tests and debug builds.
    pub fn quick(seed: u64) -> Self {
        Self { seed, max_iter: 80, local_search_evals: 400, ..Default::default() }
    }
}

/// Annealed positions in the normalized `[0,1]^2` plane.
#[derive(Debug, Clone, PartialEq)]
pub struct Placement {
    /// Per-qubit `(x, y)` in `[0,1]`.
    pub positions: Vec<(f64, f64)>,
    /// Final objective value.
    pub energy: f64,
}

/// The placement objective: weighted squared edge lengths plus soft-core
/// repulsion below the target spacing `r0 ~ 1/sqrt(q)`.
pub fn placement_energy(
    positions: &[(f64, f64)],
    graph: &InteractionGraph,
    repulsion_scale: f64,
) -> f64 {
    let q = graph.num_qubits.max(1);
    let r0 = 0.8 / (q as f64).sqrt();
    let mut e = 0.0;
    for &(a, b, w) in &graph.edges {
        let (pa, pb) = (positions[a as usize], positions[b as usize]);
        let dx = pa.0 - pb.0;
        let dy = pa.1 - pb.1;
        e += w * (dx * dx + dy * dy);
    }
    // Repulsion competes with the attraction on equal footing: scale by the
    // mean edge weight so dense circuits do not collapse.
    let lambda =
        repulsion_scale * (graph.total_weight() / graph.edges.len().max(1) as f64).max(1.0) * 4.0;
    for i in 0..positions.len() {
        for j in (i + 1)..positions.len() {
            let dx = positions[i].0 - positions[j].0;
            let dy = positions[i].1 - positions[j].1;
            let d = (dx * dx + dy * dy).sqrt();
            if d < r0 {
                let overlap = (r0 - d) / r0;
                e += lambda * overlap * overlap;
            }
        }
    }
    e
}

/// Run the annealed placement for `graph`.
pub fn place(graph: &InteractionGraph, config: &PlacementConfig) -> Placement {
    let q = graph.num_qubits;
    if q == 0 {
        return Placement { positions: Vec::new(), energy: 0.0 };
    }
    if q == 1 {
        return Placement { positions: vec![(0.5, 0.5)], energy: 0.0 };
    }
    let bounds = vec![(0.0, 1.0); 2 * q];
    let mut scratch = vec![(0.0f64, 0.0f64); q];
    let objective = |x: &[f64]| {
        for (i, s) in scratch.iter_mut().enumerate() {
            *s = (x[2 * i], x[2 * i + 1]);
        }
        placement_energy(&scratch, graph, config.repulsion_scale)
    };
    let params = AnnealParams {
        seed: config.seed,
        max_iter: config.max_iter,
        local_search_evals: config.local_search_evals,
        ..Default::default()
    };
    let result = dual_annealing(objective, &bounds, &params);
    let positions = (0..q).map(|i| (result.x[2 * i], result.x[2 * i + 1])).collect::<Vec<_>>();
    Placement { positions, energy: result.energy }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parallax_circuit::CircuitBuilder;

    fn line_graph(weights: &[f64]) -> InteractionGraph {
        InteractionGraph {
            num_qubits: weights.len() + 1,
            edges: weights.iter().enumerate().map(|(i, &w)| (i as u32, i as u32 + 1, w)).collect(),
        }
    }

    fn dist(p: &[(f64, f64)], a: usize, b: usize) -> f64 {
        let dx = p[a].0 - p[b].0;
        let dy = p[a].1 - p[b].1;
        (dx * dx + dy * dy).sqrt()
    }

    #[test]
    fn heavy_edges_end_up_shorter() {
        // Chain 0-1-2 with weight 50 on (0,1) and 1 on (1,2).
        let g = line_graph(&[50.0, 1.0]);
        let p = place(&g, &PlacementConfig::quick(7));
        assert!(
            dist(&p.positions, 0, 1) < dist(&p.positions, 1, 2),
            "heavy edge should be shorter: {:?}",
            p.positions
        );
    }

    #[test]
    fn repulsion_prevents_collapse() {
        let mut b = CircuitBuilder::new(4);
        for i in 0..4u32 {
            for j in (i + 1)..4 {
                b.cz(i, j);
            }
        }
        let g = InteractionGraph::from_circuit(&b.build());
        let p = place(&g, &PlacementConfig::quick(3));
        for i in 0..4 {
            for j in (i + 1)..4 {
                assert!(
                    dist(&p.positions, i, j) > 0.02,
                    "atoms {i},{j} collapsed: {:?}",
                    p.positions
                );
            }
        }
    }

    #[test]
    fn positions_stay_in_unit_square() {
        let g = line_graph(&[1.0, 2.0, 3.0, 4.0]);
        let p = place(&g, &PlacementConfig::quick(11));
        for &(x, y) in &p.positions {
            assert!((0.0..=1.0).contains(&x) && (0.0..=1.0).contains(&y));
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let g = line_graph(&[3.0, 1.0, 2.0]);
        let a = place(&g, &PlacementConfig::quick(5));
        let b = place(&g, &PlacementConfig::quick(5));
        assert_eq!(a, b);
    }

    #[test]
    fn degenerate_sizes() {
        let g0 = InteractionGraph { num_qubits: 0, edges: vec![] };
        assert!(place(&g0, &PlacementConfig::quick(0)).positions.is_empty());
        let g1 = InteractionGraph { num_qubits: 1, edges: vec![] };
        assert_eq!(place(&g1, &PlacementConfig::quick(0)).positions, vec![(0.5, 0.5)]);
    }

    #[test]
    fn energy_decreases_with_shorter_heavy_edges() {
        let g = line_graph(&[10.0]);
        let near = placement_energy(&[(0.4, 0.5), (0.6, 0.5)], &g, 1.0);
        let far = placement_energy(&[(0.0, 0.0), (1.0, 1.0)], &g, 1.0);
        assert!(near < far);
    }
}
