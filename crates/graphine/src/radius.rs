//! Interaction-radius selection.
//!
//! GRAPHINE picks the Rydberg interaction radius "large enough to ensure
//! that all of the qubits are reachable from all other qubits". The minimal
//! such radius over a set of points is the longest edge of their Euclidean
//! minimum spanning tree; any smaller radius disconnects the geometric
//! graph at that edge.

/// Longest edge of the Euclidean MST of `points` (Prim's algorithm,
/// O(n^2) — fine for <= 1,225 atoms). Returns 0 for fewer than two points.
pub fn connecting_radius(points: &[(f64, f64)]) -> f64 {
    let n = points.len();
    if n < 2 {
        return 0.0;
    }
    let dist_sq = |a: (f64, f64), b: (f64, f64)| {
        let dx = a.0 - b.0;
        let dy = a.1 - b.1;
        dx * dx + dy * dy
    };
    let mut in_tree = vec![false; n];
    let mut best_sq = vec![f64::INFINITY; n];
    in_tree[0] = true;
    for (j, bsq) in best_sq.iter_mut().enumerate().skip(1) {
        *bsq = dist_sq(points[0], points[j]);
    }
    let mut longest_sq: f64 = 0.0;
    for _ in 1..n {
        let mut next = usize::MAX;
        let mut next_d = f64::INFINITY;
        for j in 0..n {
            if !in_tree[j] && best_sq[j] < next_d {
                next_d = best_sq[j];
                next = j;
            }
        }
        debug_assert!(next != usize::MAX);
        in_tree[next] = true;
        longest_sq = longest_sq.max(next_d);
        for j in 0..n {
            if !in_tree[j] {
                let d = dist_sq(points[next], points[j]);
                if d < best_sq[j] {
                    best_sq[j] = d;
                }
            }
        }
    }
    longest_sq.sqrt()
}

/// Whether the geometric graph over `points` with edge radius `r` is
/// connected (used to verify the radius choice).
pub fn is_geometrically_connected(points: &[(f64, f64)], r: f64) -> bool {
    let n = points.len();
    if n <= 1 {
        return true;
    }
    let r_sq = r * r + 1e-12;
    let mut seen = vec![false; n];
    let mut stack = vec![0usize];
    seen[0] = true;
    let mut count = 1;
    while let Some(v) = stack.pop() {
        for j in 0..n {
            if !seen[j] {
                let dx = points[v].0 - points[j].0;
                let dy = points[v].1 - points[j].1;
                if dx * dx + dy * dy <= r_sq {
                    seen[j] = true;
                    count += 1;
                    stack.push(j);
                }
            }
        }
    }
    count == n
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trivial_cases() {
        assert_eq!(connecting_radius(&[]), 0.0);
        assert_eq!(connecting_radius(&[(0.5, 0.5)]), 0.0);
        assert!((connecting_radius(&[(0.0, 0.0), (0.0, 1.0)]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn chain_radius_is_largest_gap() {
        let pts = [(0.0, 0.0), (1.0, 0.0), (2.5, 0.0), (3.0, 0.0)];
        assert!((connecting_radius(&pts) - 1.5).abs() < 1e-12);
    }

    #[test]
    fn radius_connects_and_smaller_disconnects() {
        let pts = [(0.0, 0.0), (0.2, 0.9), (1.1, 0.4), (0.7, 1.6), (2.0, 2.0)];
        let r = connecting_radius(&pts);
        assert!(is_geometrically_connected(&pts, r));
        assert!(!is_geometrically_connected(&pts, r * 0.99));
    }

    #[test]
    fn grid_of_points() {
        let mut pts = Vec::new();
        for x in 0..4 {
            for y in 0..4 {
                pts.push((x as f64, y as f64));
            }
        }
        assert!((connecting_radius(&pts) - 1.0).abs() < 1e-12);
    }
}
