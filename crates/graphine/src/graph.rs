//! Circuit-to-graph conversion.
//!
//! GRAPHINE represents a circuit as a weighted graph: qubits are nodes and
//! the number of CZ gates between a pair is the edge weight (Section II-A).

use crate::stable::WordHasher;
use parallax_circuit::Circuit;

/// Weighted interaction graph of a circuit.
#[derive(Debug, Clone, PartialEq)]
pub struct InteractionGraph {
    /// Number of qubits (nodes).
    pub num_qubits: usize,
    /// Edges `(a, b, weight)` with `a < b` and `weight` = CZ count.
    pub edges: Vec<(u32, u32, f64)>,
}

impl InteractionGraph {
    /// Stable structural hash (FNV-1a over node count and edges, weights by
    /// bit pattern) — stable across processes and platforms, so it can key
    /// the layout-stage cache: equal hashes mean the annealed placement
    /// would be bit-identical for equal placement configs. Distinct
    /// circuits with the *same* interaction graph deliberately share a
    /// hash, since placement only sees the graph.
    pub fn stable_hash(&self) -> u64 {
        let mut h = WordHasher::new();
        h.word(self.num_qubits as u64);
        for &(a, b, w) in &self.edges {
            h.word(u64::from(a)).word(u64::from(b)).word(w.to_bits());
        }
        h.finish()
    }

    /// Build the graph from a circuit.
    pub fn from_circuit(circuit: &Circuit) -> Self {
        let edges =
            circuit.cz_pair_counts().into_iter().map(|((a, b), w)| (a, b, w as f64)).collect();
        Self { num_qubits: circuit.num_qubits(), edges }
    }

    /// Sum of all edge weights (total CZ gates).
    pub fn total_weight(&self) -> f64 {
        self.edges.iter().map(|&(_, _, w)| w).sum()
    }

    /// Per-qubit weighted degree.
    pub fn weighted_degrees(&self) -> Vec<f64> {
        let mut deg = vec![0.0; self.num_qubits];
        for &(a, b, w) in &self.edges {
            deg[a as usize] += w;
            deg[b as usize] += w;
        }
        deg
    }

    /// Whether the graph (ignoring weights) is connected. Isolated qubits
    /// count as disconnected components.
    pub fn is_connected(&self) -> bool {
        if self.num_qubits == 0 {
            return true;
        }
        let mut adj = vec![Vec::new(); self.num_qubits];
        for &(a, b, _) in &self.edges {
            adj[a as usize].push(b as usize);
            adj[b as usize].push(a as usize);
        }
        let mut seen = vec![false; self.num_qubits];
        let mut stack = vec![0usize];
        seen[0] = true;
        let mut count = 1;
        while let Some(v) = stack.pop() {
            for &n in &adj[v] {
                if !seen[n] {
                    seen[n] = true;
                    count += 1;
                    stack.push(n);
                }
            }
        }
        count == self.num_qubits
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parallax_circuit::CircuitBuilder;

    #[test]
    fn graph_from_circuit_counts_cz() {
        let mut b = CircuitBuilder::new(3);
        b.cz(0, 1).cz(0, 1).cz(1, 2).h(0);
        let g = InteractionGraph::from_circuit(&b.build());
        assert_eq!(g.num_qubits, 3);
        assert_eq!(g.edges, vec![(0, 1, 2.0), (1, 2, 1.0)]);
        assert_eq!(g.total_weight(), 3.0);
    }

    #[test]
    fn weighted_degrees() {
        let mut b = CircuitBuilder::new(3);
        b.cz(0, 1).cz(0, 1).cz(1, 2);
        let g = InteractionGraph::from_circuit(&b.build());
        assert_eq!(g.weighted_degrees(), vec![2.0, 3.0, 1.0]);
    }

    #[test]
    fn connectivity() {
        let mut b = CircuitBuilder::new(4);
        b.cz(0, 1).cz(2, 3);
        let g = InteractionGraph::from_circuit(&b.build());
        assert!(!g.is_connected());
        let mut b2 = CircuitBuilder::new(4);
        b2.cz(0, 1).cz(1, 2).cz(2, 3);
        assert!(InteractionGraph::from_circuit(&b2.build()).is_connected());
    }

    #[test]
    fn stable_hash_discriminates_and_reproduces() {
        let mut b = CircuitBuilder::new(3);
        b.cz(0, 1).cz(1, 2);
        let g = InteractionGraph::from_circuit(&b.build());
        assert_eq!(g.stable_hash(), g.clone().stable_hash());

        // Weight change, edge change, and node-count change all steer it.
        let mut heavier = g.clone();
        heavier.edges[0].2 = 2.0;
        assert_ne!(g.stable_hash(), heavier.stable_hash());
        let mut rewired = g.clone();
        rewired.edges[1] = (0, 2, 1.0);
        assert_ne!(g.stable_hash(), rewired.stable_hash());
        let mut wider = g.clone();
        wider.num_qubits = 4;
        assert_ne!(g.stable_hash(), wider.stable_hash());

        // Same graph from a *different* circuit (extra single-qubit gates)
        // shares the hash: placement only sees the graph.
        let mut b2 = CircuitBuilder::new(3);
        b2.h(0).cz(0, 1).h(2).cz(1, 2);
        assert_eq!(g.stable_hash(), InteractionGraph::from_circuit(&b2.build()).stable_hash());
    }

    #[test]
    fn isolated_qubit_disconnects() {
        let mut b = CircuitBuilder::new(3);
        b.cz(0, 1).h(2);
        let g = InteractionGraph::from_circuit(&b.build());
        assert!(!g.is_connected());
    }
}
