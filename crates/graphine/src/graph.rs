//! Circuit-to-graph conversion.
//!
//! GRAPHINE represents a circuit as a weighted graph: qubits are nodes and
//! the number of CZ gates between a pair is the edge weight (Section II-A).

use crate::stable::WordHasher;
use parallax_circuit::Circuit;

/// Weighted interaction graph of a circuit.
#[derive(Debug, Clone, PartialEq)]
pub struct InteractionGraph {
    /// Number of qubits (nodes).
    pub num_qubits: usize,
    /// Edges `(a, b, weight)` with `a < b` and `weight` = CZ count.
    pub edges: Vec<(u32, u32, f64)>,
}

impl InteractionGraph {
    /// Stable structural hash (FNV-1a over node count and edges, weights by
    /// bit pattern) — stable across processes and platforms, so it can key
    /// the layout-stage cache: equal hashes mean the annealed placement
    /// would be bit-identical for equal placement configs. Distinct
    /// circuits with the *same* interaction graph deliberately share a
    /// hash, since placement only sees the graph.
    pub fn stable_hash(&self) -> u64 {
        let mut h = WordHasher::new();
        h.word(self.num_qubits as u64);
        for &(a, b, w) in &self.edges {
            h.word(u64::from(a)).word(u64::from(b)).word(w.to_bits());
        }
        h.finish()
    }

    /// Build the graph from a circuit.
    pub fn from_circuit(circuit: &Circuit) -> Self {
        let edges =
            circuit.cz_pair_counts().into_iter().map(|((a, b), w)| (a, b, w as f64)).collect();
        Self { num_qubits: circuit.num_qubits(), edges }
    }

    /// Sum of all edge weights (total CZ gates).
    pub fn total_weight(&self) -> f64 {
        self.edges.iter().map(|&(_, _, w)| w).sum()
    }

    /// Per-qubit weighted degree.
    pub fn weighted_degrees(&self) -> Vec<f64> {
        let mut deg = vec![0.0; self.num_qubits];
        for &(a, b, w) in &self.edges {
            deg[a as usize] += w;
            deg[b as usize] += w;
        }
        deg
    }

    /// Whether the graph (ignoring weights) is connected. Isolated qubits
    /// count as disconnected components.
    pub fn is_connected(&self) -> bool {
        if self.num_qubits == 0 {
            return true;
        }
        let adj = self.csr();
        let mut seen = vec![false; self.num_qubits];
        let mut stack = vec![0usize];
        seen[0] = true;
        let mut count = 1;
        while let Some(v) = stack.pop() {
            for &n in adj.neighbors(v) {
                let n = n as usize;
                if !seen[n] {
                    seen[n] = true;
                    count += 1;
                    stack.push(n);
                }
            }
        }
        count == self.num_qubits
    }

    /// Build the CSR adjacency view of this graph. `edges` stays the
    /// canonical representation (and the sole input of
    /// [`InteractionGraph::stable_hash`], so every cache key is untouched);
    /// the CSR arrays are derived whenever a consumer is about to walk
    /// per-qubit neighborhoods in a loop.
    pub fn csr(&self) -> CsrAdjacency {
        CsrAdjacency::build(self)
    }
}

/// Degree-prefix CSR adjacency of an [`InteractionGraph`]: qubit `q`'s
/// incidences occupy `offsets[q] as usize..offsets[q + 1] as usize` in the
/// parallel `neighbors`/`weights`/`edge_ids` lanes, ordered by ascending
/// edge index (a stable counting sort over `edges`, which is exactly the
/// order the nested `Vec<Vec<_>>` builders it replaced produced). Four
/// flat allocations regardless of qubit count, so the annealed placement
/// inner loop and the incremental energy table stream contiguous memory.
#[derive(Debug, Clone, PartialEq)]
pub struct CsrAdjacency {
    offsets: Vec<u32>,
    neighbors: Vec<u32>,
    weights: Vec<f64>,
    edge_ids: Vec<u32>,
    degrees: Vec<f64>,
}

impl CsrAdjacency {
    fn build(graph: &InteractionGraph) -> Self {
        let q = graph.num_qubits;
        assert!(graph.edges.len() < u32::MAX as usize / 2, "edge count overflows u32 CSR");
        let mut offsets = vec![0u32; q + 1];
        for &(a, b, _) in &graph.edges {
            offsets[a as usize + 1] += 1;
            if b != a {
                offsets[b as usize + 1] += 1;
            }
        }
        for i in 1..=q {
            offsets[i] += offsets[i - 1];
        }
        let mut cursor: Vec<u32> = offsets[..q].to_vec();
        let len = *offsets.last().unwrap() as usize;
        let (mut neighbors, mut weights, mut edge_ids) =
            (vec![0u32; len], vec![0.0f64; len], vec![0u32; len]);
        let mut degrees = vec![0.0f64; q];
        let mut scatter = |at: &mut Vec<u32>, q: usize, n: u32, w: f64, e: usize| {
            let slot = at[q] as usize;
            neighbors[slot] = n;
            weights[slot] = w;
            edge_ids[slot] = e as u32;
            at[q] += 1;
        };
        for (e, &(a, b, w)) in graph.edges.iter().enumerate() {
            scatter(&mut cursor, a as usize, b, w, e);
            if b != a {
                scatter(&mut cursor, b as usize, a, w, e);
            }
            degrees[a as usize] += w;
            degrees[b as usize] += w;
        }
        Self { offsets, neighbors, weights, edge_ids, degrees }
    }

    /// Number of qubits (rows).
    pub fn num_qubits(&self) -> usize {
        self.offsets.len() - 1
    }

    #[inline]
    fn range(&self, q: usize) -> std::ops::Range<usize> {
        self.offsets[q] as usize..self.offsets[q + 1] as usize
    }

    /// Qubit `q`'s neighbors, by ascending incident-edge index.
    pub fn neighbors(&self, q: usize) -> &[u32] {
        &self.neighbors[self.range(q)]
    }

    /// Edge weights parallel to [`CsrAdjacency::neighbors`].
    pub fn weights(&self, q: usize) -> &[f64] {
        &self.weights[self.range(q)]
    }

    /// Indices into the graph's `edges` parallel to
    /// [`CsrAdjacency::neighbors`].
    pub fn edge_ids(&self, q: usize) -> &[u32] {
        &self.edge_ids[self.range(q)]
    }

    /// Precomputed weighted degree of qubit `q` (the lane twin of
    /// [`InteractionGraph::weighted_degrees`], no allocation per query).
    pub fn degree(&self, q: usize) -> f64 {
        self.degrees[q]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parallax_circuit::CircuitBuilder;

    #[test]
    fn graph_from_circuit_counts_cz() {
        let mut b = CircuitBuilder::new(3);
        b.cz(0, 1).cz(0, 1).cz(1, 2).h(0);
        let g = InteractionGraph::from_circuit(&b.build());
        assert_eq!(g.num_qubits, 3);
        assert_eq!(g.edges, vec![(0, 1, 2.0), (1, 2, 1.0)]);
        assert_eq!(g.total_weight(), 3.0);
    }

    #[test]
    fn weighted_degrees() {
        let mut b = CircuitBuilder::new(3);
        b.cz(0, 1).cz(0, 1).cz(1, 2);
        let g = InteractionGraph::from_circuit(&b.build());
        assert_eq!(g.weighted_degrees(), vec![2.0, 3.0, 1.0]);
    }

    #[test]
    fn connectivity() {
        let mut b = CircuitBuilder::new(4);
        b.cz(0, 1).cz(2, 3);
        let g = InteractionGraph::from_circuit(&b.build());
        assert!(!g.is_connected());
        let mut b2 = CircuitBuilder::new(4);
        b2.cz(0, 1).cz(1, 2).cz(2, 3);
        assert!(InteractionGraph::from_circuit(&b2.build()).is_connected());
    }

    #[test]
    fn stable_hash_discriminates_and_reproduces() {
        let mut b = CircuitBuilder::new(3);
        b.cz(0, 1).cz(1, 2);
        let g = InteractionGraph::from_circuit(&b.build());
        assert_eq!(g.stable_hash(), g.clone().stable_hash());

        // Weight change, edge change, and node-count change all steer it.
        let mut heavier = g.clone();
        heavier.edges[0].2 = 2.0;
        assert_ne!(g.stable_hash(), heavier.stable_hash());
        let mut rewired = g.clone();
        rewired.edges[1] = (0, 2, 1.0);
        assert_ne!(g.stable_hash(), rewired.stable_hash());
        let mut wider = g.clone();
        wider.num_qubits = 4;
        assert_ne!(g.stable_hash(), wider.stable_hash());

        // Same graph from a *different* circuit (extra single-qubit gates)
        // shares the hash: placement only sees the graph.
        let mut b2 = CircuitBuilder::new(3);
        b2.h(0).cz(0, 1).h(2).cz(1, 2);
        assert_eq!(g.stable_hash(), InteractionGraph::from_circuit(&b2.build()).stable_hash());
    }

    #[test]
    fn csr_matches_nested_adjacency_row_for_row() {
        let mut b = CircuitBuilder::new(5);
        b.cz(0, 1).cz(0, 1).cz(1, 2).cz(0, 3).cz(2, 3).h(4);
        let g = InteractionGraph::from_circuit(&b.build());
        let csr = g.csr();
        assert_eq!(csr.num_qubits(), 5);
        // Nested oracle: per-qubit (neighbor, weight, edge id) in edge order.
        let mut nested: Vec<Vec<(u32, f64, u32)>> = vec![Vec::new(); g.num_qubits];
        for (e, &(a, b, w)) in g.edges.iter().enumerate() {
            nested[a as usize].push((b, w, e as u32));
            nested[b as usize].push((a, w, e as u32));
        }
        for (q, nested_row) in nested.iter().enumerate() {
            let row: Vec<(u32, f64, u32)> = csr
                .neighbors(q)
                .iter()
                .zip(csr.weights(q))
                .zip(csr.edge_ids(q))
                .map(|((&n, &w), &e)| (n, w, e))
                .collect();
            assert_eq!(&row, nested_row, "qubit {q}");
            assert_eq!(csr.degree(q), g.weighted_degrees()[q], "degree of {q}");
        }
        // Isolated qubit: empty row, zero degree.
        assert!(csr.neighbors(4).is_empty());
        assert_eq!(csr.degree(4), 0.0);
    }

    #[test]
    fn isolated_qubit_disconnects() {
        let mut b = CircuitBuilder::new(3);
        b.cz(0, 1).h(2);
        let g = InteractionGraph::from_circuit(&b.build());
        assert!(!g.is_connected());
    }
}
