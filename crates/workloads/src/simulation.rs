//! Hamiltonian-simulation benchmarks: HSB (time-dependent Heisenberg
//! simulation, ArQTiC) and TFIM (transverse-field Ising model).

use parallax_circuit::{Circuit, CircuitBuilder};

/// HSB: Trotterized time-dependent Heisenberg spin-chain simulation
/// [Bassman et al., ArQTiC]. Each Trotter step applies XX, YY, and ZZ
/// couplings on every chain bond plus a time-varying transverse field.
pub fn heisenberg_chain(n: usize, steps: usize) -> Circuit {
    assert!(n >= 2);
    let mut b = CircuitBuilder::new(n);
    let jx = 0.8;
    let jy = 0.6;
    let jz = 0.4;
    for step in 0..steps {
        // Time-dependent field sweep (ArQTiC drives a cosine schedule).
        let h_t = (step as f64 / steps.max(1) as f64 * std::f64::consts::PI).cos();
        for q in 0..n as u32 {
            b.rx(0.1 * h_t, q);
        }
        for i in 0..(n - 1) as u32 {
            b.rxx(jx, i, i + 1);
            b.ryy(jy, i, i + 1);
            b.rzz(jz, i, i + 1);
        }
    }
    b.build()
}

/// TFIM: Trotterized transverse-field Ising model on a ring [Bassman et
/// al.]. Each step: ZZ couplings along all ring bonds followed by the
/// transverse X field. The 128-qubit instance is Table III's largest
/// benchmark; every qubit interacts with at most two others, making it the
/// paper's canonical low-connectivity case.
pub fn tfim_ring(n: usize, steps: usize) -> Circuit {
    assert!(n >= 3);
    let mut b = CircuitBuilder::new(n);
    let j = 0.5;
    let h = 1.0;
    for _ in 0..steps {
        for i in 0..n as u32 {
            b.rzz(j, i, (i + 1) % n as u32);
        }
        for q in 0..n as u32 {
            b.rx(h, q);
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hsb_matches_table3_size() {
        let c = heisenberg_chain(16, 34);
        assert_eq!(c.num_qubits(), 16);
        // 34 steps x 15 bonds x 3 couplings x 2 CZ = 3060 (paper: 3081).
        assert_eq!(c.cz_count(), 34 * 15 * 3 * 2);
    }

    #[test]
    fn tfim_matches_table3_size() {
        let c = tfim_ring(128, 10);
        assert_eq!(c.num_qubits(), 128);
        // 10 steps x 128 bonds x 2 CZ = 2560 (paper: 2540).
        assert_eq!(c.cz_count(), 10 * 128 * 2);
    }

    #[test]
    fn tfim_connectivity_is_two() {
        let c = tfim_ring(16, 2);
        let conn = c.connectivity();
        assert!(conn.iter().all(|&d| d == 2), "{conn:?}");
    }

    #[test]
    fn hsb_connectivity_is_chain() {
        let c = heisenberg_chain(8, 1);
        let conn = c.connectivity();
        assert_eq!(conn[0], 1);
        assert_eq!(conn[4], 2);
        assert_eq!(conn[7], 1);
    }

    #[test]
    fn zero_steps_gives_empty_circuit() {
        assert!(tfim_ring(8, 0).is_empty());
        assert!(heisenberg_chain(8, 0).is_empty());
    }

    #[test]
    fn deterministic() {
        assert_eq!(tfim_ring(16, 3), tfim_ring(16, 3));
        assert_eq!(heisenberg_chain(8, 3), heisenberg_chain(8, 3));
    }
}
