//! Algorithmic benchmarks: QFT, QAOA, SAT (Grover satisfiability), and
//! KNN (swap-test nearest neighbours).

use parallax_circuit::{Circuit, CircuitBuilder};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// QFT: the quantum Fourier transform [Namias 1980 formulation]: Hadamards
/// with controlled-phase cascades, then the reversal SWAP network.
pub fn qft(n: usize) -> Circuit {
    let mut b = CircuitBuilder::new(n);
    for i in 0..n as u32 {
        b.h(i);
        for j in (i + 1)..n as u32 {
            let angle = std::f64::consts::PI / f64::from(1u32 << (j - i));
            b.cp(angle, j, i);
        }
    }
    for i in 0..(n / 2) as u32 {
        b.swap(i, n as u32 - 1 - i);
    }
    b.build()
}

/// QAOA: quantum alternating operator ansatz [Farhi & Harrow] for MaxCut
/// on a random 3-regular graph: `rounds` alternations of the cost layer
/// (ZZ via CX-RZ-CX per edge) and the mixer (RX on every qubit).
pub fn qaoa(n: usize, rounds: usize, seed: u64) -> Circuit {
    let mut rng = StdRng::seed_from_u64(seed);
    let edges = random_regular_edges(n, 3, &mut rng);
    let mut b = CircuitBuilder::new(n);
    for q in 0..n as u32 {
        b.h(q);
    }
    for round in 0..rounds {
        let gamma = 0.4 + 0.1 * round as f64;
        let beta = 0.9 - 0.1 * round as f64;
        for &(u, v) in &edges {
            b.cx(u, v);
            b.rz(gamma, v);
            b.cx(u, v);
        }
        for q in 0..n as u32 {
            b.rx(beta, q);
        }
    }
    b.build()
}

/// Approximately 3-regular random graph (greedy pairing; falls back to a
/// ring when pairing stalls so the graph is always connected).
fn random_regular_edges(n: usize, degree: usize, rng: &mut StdRng) -> Vec<(u32, u32)> {
    let mut edges: Vec<(u32, u32)> = (0..n as u32).map(|i| (i, (i + 1) % n as u32)).collect();
    let mut deg = vec![2usize; n];
    let mut attempts = 0;
    while attempts < 50 * n {
        attempts += 1;
        let a = rng.random_range(0..n);
        let c = rng.random_range(0..n);
        if a == c || deg[a] >= degree || deg[c] >= degree {
            continue;
        }
        let (lo, hi) = (a.min(c) as u32, a.max(c) as u32);
        if edges.contains(&(lo, hi)) {
            continue;
        }
        edges.push((lo, hi));
        deg[a] += 1;
        deg[c] += 1;
    }
    edges
}

/// SAT: Grover-style Boolean satisfiability circuit [Su et al. style]:
/// clause evaluation via Toffoli cascades into ancilla qubits, a
/// multi-controlled phase oracle, uncompute, then diffusion.
///
/// Layout: `vars` variable qubits, `clauses` clause-ancillas, 1 phase
/// ancilla. Table III's SAT has 11 qubits: 6 variables + 4 clauses + 1.
pub fn grover_sat(vars: usize, clauses: usize, iterations: usize, seed: u64) -> Circuit {
    assert!(vars >= 3);
    let n = vars + clauses + 1;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = CircuitBuilder::new(n);
    let clause_q = |k: usize| (vars + k) as u32;
    let phase_anc = (vars + clauses) as u32;

    // Random 3-literal clauses.
    let clause_lits: Vec<[(u32, bool); 3]> = (0..clauses)
        .map(|_| {
            let mut picks = Vec::new();
            while picks.len() < 3 {
                let v = rng.random_range(0..vars as u32);
                if !picks.iter().any(|&(p, _)| p == v) {
                    picks.push((v, rng.random::<bool>()));
                }
            }
            [picks[0], picks[1], picks[2]]
        })
        .collect();

    for q in 0..vars as u32 {
        b.h(q);
    }
    for _ in 0..iterations {
        // Compute each clause into its ancilla (OR of 3 literals as
        // NOT(AND of negations), two Toffolis through the phase ancilla).
        let compute = |b: &mut CircuitBuilder, lits: &[(u32, bool); 3], out: u32| {
            for &(v, pos) in lits {
                if pos {
                    b.x(v);
                }
            }
            b.x(out);
            b.ccx(lits[0].0, lits[1].0, phase_anc);
            b.ccx(phase_anc, lits[2].0, out);
            b.ccx(lits[0].0, lits[1].0, phase_anc);
            for &(v, pos) in lits {
                if pos {
                    b.x(v);
                }
            }
        };
        for (k, lits) in clause_lits.iter().enumerate() {
            compute(&mut b, lits, clause_q(k));
        }
        // Phase-kick when all clauses hold.
        let controls: Vec<u32> = (0..clauses).map(clause_q).collect();
        let (&last, rest) = controls.split_last().unwrap();
        b.h(last);
        // Use variable qubits as dirty-ish ancillas is unsafe; use the
        // phase ancilla chain over the first variables instead — our mcx
        // needs k-2 clean ancillas, so reuse variable qubits only when the
        // clause count is small. For the benchmark sizes (<= 4 clauses) a
        // single ancilla suffices.
        b.mcx(rest, last, &[phase_anc]);
        b.h(last);
        // Uncompute clauses (self-inverse).
        for (k, lits) in clause_lits.iter().enumerate().rev() {
            compute(&mut b, lits, clause_q(k));
        }
        // Diffusion over variables.
        for q in 0..vars as u32 {
            b.h(q);
            b.x(q);
        }
        let vars_list: Vec<u32> = (0..vars as u32).collect();
        let (&target, rest_vars) = vars_list.split_last().unwrap();
        b.h(target);
        b.mcx(rest_vars, target, &[phase_anc, clause_q(0), clause_q(1)]);
        b.h(target);
        for q in 0..vars as u32 {
            b.x(q);
            b.h(q);
        }
    }
    b.build()
}

/// KNN: quantum k-nearest-neighbours via the swap test [QASMBench `knn`]:
/// one ancilla Hadamard, controlled-SWAPs between the two feature
/// registers, and a closing Hadamard. `features` qubits per register
/// (Table III's KNN: 12 features -> 25 qubits).
pub fn knn_swap_test(features: usize, seed: u64) -> Circuit {
    let n = 2 * features + 1;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = CircuitBuilder::new(n);
    let anc = 0u32;
    let a = |i: usize| (1 + i) as u32;
    let bq = |i: usize| (1 + features + i) as u32;
    // Encode pseudo-random feature amplitudes.
    for i in 0..features {
        b.ry(rng.random::<f64>() * std::f64::consts::PI, a(i));
        b.ry(rng.random::<f64>() * std::f64::consts::PI, bq(i));
    }
    b.h(anc);
    for i in 0..features {
        b.cswap(anc, a(i), bq(i));
    }
    b.h(anc);
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn qft_matches_table3_size() {
        let c = qft(10);
        assert_eq!(c.num_qubits(), 10);
        // 45 cp x 2 CZ + 5 swaps x 3 CZ = 105.
        assert_eq!(c.cz_count(), 105);
    }

    #[test]
    fn qaoa_matches_table3_size() {
        let c = qaoa(10, 3, 1);
        assert_eq!(c.num_qubits(), 10);
        // ~15 edges x 2 CZ x 3 rounds = ~90 (Fig. 9 reports 162 for its instance).
        assert!(c.cz_count() >= 60 && c.cz_count() <= 120, "cz = {}", c.cz_count());
    }

    #[test]
    fn sat_matches_table3_size() {
        let c = grover_sat(6, 4, 1, 1);
        assert_eq!(c.num_qubits(), 11);
        assert!(c.cz_count() >= 150, "cz = {}", c.cz_count());
    }

    #[test]
    fn knn_matches_table3_size() {
        let c = knn_swap_test(12, 1);
        assert_eq!(c.num_qubits(), 25);
        // 12 cswap x 8 CZ = 96 (paper's Parallax count: 84).
        assert_eq!(c.cz_count(), 96);
    }

    #[test]
    fn qaoa_graph_is_near_regular() {
        let c = qaoa(10, 1, 3);
        let conn = c.connectivity();
        assert!(conn.iter().all(|&d| (2..=3).contains(&d)), "{conn:?}");
    }

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(qft(8), qft(8));
        assert_eq!(qaoa(10, 2, 4), qaoa(10, 2, 4));
        assert_eq!(grover_sat(6, 4, 1, 4), grover_sat(6, 4, 1, 4));
        assert_eq!(knn_swap_test(5, 4), knn_swap_test(5, 4));
    }

    /// Functional: the swap test on identical states keeps the ancilla in
    /// |0> with probability 1.
    #[test]
    fn swap_test_identical_states() {
        use parallax_circuit::{Gate, Mat2, C64};
        // 2 features, same zero-rotation on both registers.
        let mut b = CircuitBuilder::new(5);
        b.h(0);
        b.cswap(0, 1, 3);
        b.cswap(0, 2, 4);
        b.h(0);
        let c = b.build();
        // Tiny inline statevector run.
        let mut amps = vec![C64::ZERO; 1 << 5];
        amps[0] = C64::ONE;
        for g in c.gates() {
            match *g {
                Gate::U3 { q, theta, phi, lam } => {
                    let m = Mat2::u3(theta, phi, lam);
                    let stride = 1usize << q;
                    let mut base = 0;
                    while base < amps.len() {
                        for i in base..base + stride {
                            let (a0, a1) = (amps[i], amps[i + stride]);
                            amps[i] = m.m[0] * a0 + m.m[1] * a1;
                            amps[i + stride] = m.m[2] * a0 + m.m[3] * a1;
                        }
                        base += stride << 1;
                    }
                }
                Gate::Cz { a, b } => {
                    let mask = (1usize << a) | (1usize << b);
                    for (i, amp) in amps.iter_mut().enumerate() {
                        if i & mask == mask {
                            *amp = -*amp;
                        }
                    }
                }
            }
        }
        let p_anc_one: f64 =
            amps.iter().enumerate().filter(|(i, _)| i & 1 == 1).map(|(_, a)| a.norm_sq()).sum();
        assert!(p_anc_one < 1e-9, "p(1) = {p_anc_one}");
    }
}
