//! The Table III benchmark registry: every evaluated circuit at the
//! paper's qubit count, addressable by acronym.

use crate::{algorithms, arithmetic, codes, random_circuits, simulation, variational};
use parallax_circuit::{optimize, Circuit};

/// One Table III benchmark.
#[derive(Clone)]
pub struct Benchmark {
    /// Acronym used throughout the evaluation (e.g. "ADD").
    pub name: &'static str,
    /// Qubit count (matches Table III).
    pub qubits: usize,
    /// Table III description.
    pub description: &'static str,
    generator: fn(u64) -> Circuit,
}

impl std::fmt::Debug for Benchmark {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Benchmark").field("name", &self.name).field("qubits", &self.qubits).finish()
    }
}

impl Benchmark {
    /// Generate the raw circuit (pre-transpile) for `seed`.
    pub fn raw_circuit(&self, seed: u64) -> Circuit {
        (self.generator)(seed)
    }

    /// Generate the circuit and run the peephole transpiler, mirroring the
    /// paper's "Qiskit transpiler with the highest optimization level"
    /// preprocessing applied to every compiler's input.
    pub fn circuit(&self, seed: u64) -> Circuit {
        optimize(&self.raw_circuit(seed))
    }
}

/// All 18 Table III benchmarks in the paper's order.
pub fn all_benchmarks() -> Vec<Benchmark> {
    vec![
        Benchmark {
            name: "ADD",
            qubits: 9,
            description: "Quantum arithmetic algorithm for adding",
            generator: |_| arithmetic::ripple_carry_adder(4),
        },
        Benchmark {
            name: "ADV",
            qubits: 9,
            description: "Google's quantum advantage benchmark",
            generator: |s| random_circuits::quantum_advantage(3, 8, s),
        },
        Benchmark {
            name: "GCM",
            qubits: 13,
            description: "Generator coordinate method",
            generator: |s| variational::gcm(13, 44, s),
        },
        Benchmark {
            name: "HSB",
            qubits: 16,
            description: "Time-dependent hamiltonian simulation",
            generator: |_| simulation::heisenberg_chain(16, 34),
        },
        Benchmark {
            name: "HLF",
            qubits: 10,
            description: "Hidden linear function application",
            generator: |s| random_circuits::hidden_linear_function(10, 0.9, s),
        },
        Benchmark {
            name: "KNN",
            qubits: 25,
            description: "Quantum k nearest neighbors algorithm",
            generator: |s| algorithms::knn_swap_test(12, s),
        },
        Benchmark {
            name: "MLT",
            qubits: 10,
            description: "Quantum arithmetic algorithm for multiplying",
            generator: |_| arithmetic::multiplier(2),
        },
        Benchmark {
            name: "QAOA",
            qubits: 10,
            description: "Quantum alternating operator ansatz",
            generator: |s| algorithms::qaoa(10, 3, s),
        },
        Benchmark {
            name: "QEC",
            qubits: 17,
            description: "Quantum repetition error correction code",
            generator: |_| codes::repetition_code(9, 2),
        },
        Benchmark {
            name: "QFT",
            qubits: 10,
            description: "Quantum Fourier transform",
            generator: |_| algorithms::qft(10),
        },
        Benchmark {
            name: "QGAN",
            qubits: 39,
            description: "Quantum generative adversarial network",
            generator: |s| variational::qgan(39, 5, s),
        },
        Benchmark {
            name: "QV",
            qubits: 32,
            description: "IBM's quantum volume benchmark",
            generator: |s| random_circuits::quantum_volume(32, 32, s),
        },
        Benchmark {
            name: "SAT",
            qubits: 11,
            description: "Quantum code for satisfiability solving",
            generator: |s| algorithms::grover_sat(6, 4, 1, s),
        },
        Benchmark {
            name: "SECA",
            qubits: 11,
            description: "Shor's error correction algorithm",
            generator: |_| codes::shor_code(2),
        },
        Benchmark {
            name: "SQRT",
            qubits: 18,
            description: "Quantum code for square root calculation",
            generator: |_| arithmetic::grover_sqrt(8, 2),
        },
        Benchmark {
            name: "TFIM",
            qubits: 128,
            description: "Transverse-field ising model",
            generator: |_| simulation::tfim_ring(128, 10),
        },
        Benchmark {
            name: "VQE",
            qubits: 28,
            description: "Variational quantum eigensolver",
            generator: |s| variational::vqe(28, 40, s),
        },
        Benchmark {
            name: "WST",
            qubits: 27,
            description: "W-State preparation and assessment",
            generator: |_| codes::w_state(27),
        },
    ]
}

/// Look up a benchmark by (case-insensitive) acronym.
pub fn benchmark(name: &str) -> Option<Benchmark> {
    all_benchmarks().into_iter().find(|b| b.name.eq_ignore_ascii_case(name))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn there_are_eighteen_benchmarks() {
        assert_eq!(all_benchmarks().len(), 18);
    }

    #[test]
    fn qubit_counts_match_table3() {
        let expected = [
            ("ADD", 9),
            ("ADV", 9),
            ("GCM", 13),
            ("HSB", 16),
            ("HLF", 10),
            ("KNN", 25),
            ("MLT", 10),
            ("QAOA", 10),
            ("QEC", 17),
            ("QFT", 10),
            ("QGAN", 39),
            ("QV", 32),
            ("SAT", 11),
            ("SECA", 11),
            ("SQRT", 18),
            ("TFIM", 128),
            ("VQE", 28),
            ("WST", 27),
        ];
        for ((name, qubits), b) in expected.iter().zip(all_benchmarks()) {
            assert_eq!(b.name, *name);
            assert_eq!(b.qubits, *qubits, "{name}");
            assert_eq!(b.raw_circuit(0).num_qubits(), *qubits, "{name}");
        }
    }

    #[test]
    fn lookup_by_name() {
        assert_eq!(benchmark("qft").unwrap().name, "QFT");
        assert_eq!(benchmark("TFIM").unwrap().qubits, 128);
        assert!(benchmark("NOPE").is_none());
    }

    #[test]
    fn transpiled_circuits_never_grow() {
        for b in all_benchmarks() {
            if b.qubits > 32 {
                continue; // keep the unit-test suite fast
            }
            let raw = b.raw_circuit(1);
            let opt = b.circuit(1);
            assert!(opt.len() <= raw.len(), "{}: {} > {}", b.name, opt.len(), raw.len());
            assert!(opt.cz_count() <= raw.cz_count());
            assert_eq!(opt.num_qubits(), raw.num_qubits());
        }
    }

    #[test]
    fn every_small_benchmark_has_gates() {
        for b in all_benchmarks() {
            if b.qubits <= 32 {
                assert!(!b.circuit(0).is_empty(), "{} is empty", b.name);
            }
        }
    }
}
