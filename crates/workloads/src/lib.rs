//! Generators for the 18 evaluation benchmarks of the Parallax paper
//! (Table III), spanning 9-128 qubits across arithmetic, sampling,
//! chemistry, Hamiltonian simulation, optimization, error correction, and
//! state preparation.
//!
//! Each generator builds the algorithm's genuine structure (e.g. the
//! Cuccaro MAJ/UMA chains for ADD, SU(4) pair layers for QV, ring
//! Trotterization for TFIM) directly in the {U3, CZ} basis; the registry
//! ([`registry`]) binds the Table III sizes. Functional tests verify
//! semantics where tractable (the adder adds, the W state is a W state,
//! Shor's code corrects its injected error).
//!
//! # Example
//! ```
//! use parallax_workloads::benchmark;
//! let qft = benchmark("QFT").unwrap();
//! let circuit = qft.circuit(0); // transpiled, ready for any compiler
//! assert_eq!(circuit.num_qubits(), 10);
//! ```

pub mod algorithms;
pub mod arithmetic;
pub mod codes;
pub mod random_circuits;
pub mod registry;
pub mod simulation;
pub mod variational;

pub use registry::{all_benchmarks, benchmark, Benchmark};
