//! Arithmetic benchmarks: ADD (Cuccaro adder), MLT (multiplier), and
//! SQRT (Grover-based square root).

use parallax_circuit::{Circuit, CircuitBuilder};

/// ADD: Cuccaro ripple-carry adder [Cuccaro et al. 2004].
///
/// Layout (for `bits = 4`, 9 qubits as in Table III):
/// `q0` = carry-in, then interleaved `b[i]` (`q1,q3,q5,q7`) and `a[i]`
/// (`q2,q4,q6,q8`). Computes `b += a` in place via MAJ/UMA chains.
pub fn ripple_carry_adder(bits: usize) -> Circuit {
    assert!(bits >= 1);
    let n = 2 * bits + 1;
    let mut b = CircuitBuilder::new(n);
    let a_q = |i: usize| (2 * i + 2) as u32;
    let b_q = |i: usize| (2 * i + 1) as u32;
    let maj = |bld: &mut CircuitBuilder, c: u32, y: u32, x: u32| {
        bld.cx(x, y);
        bld.cx(x, c);
        bld.ccx(c, y, x);
    };
    let uma = |bld: &mut CircuitBuilder, c: u32, y: u32, x: u32| {
        bld.ccx(c, y, x);
        bld.cx(x, c);
        bld.cx(c, y);
    };
    // Forward MAJ chain.
    maj(&mut b, 0, b_q(0), a_q(0));
    for i in 1..bits {
        maj(&mut b, a_q(i - 1), b_q(i), a_q(i));
    }
    // Reverse UMA chain.
    for i in (1..bits).rev() {
        uma(&mut b, a_q(i - 1), b_q(i), a_q(i));
    }
    uma(&mut b, 0, b_q(0), a_q(0));
    b.build()
}

/// MLT: quantum multiplier on `2*bits + 2*bits + 2` qubits: computes the
/// product of two `bits`-bit registers into a `2*bits` output register via
/// controlled (Toffoli-cascade) shift-adds [Cirq-style construction].
///
/// For `bits = 2` this is the paper's 10-qubit MLT: `a(2) b(2) p(4) c(2)`.
pub fn multiplier(bits: usize) -> Circuit {
    assert!(bits >= 1);
    let n = 2 * bits + 2 * bits + 2;
    let mut bld = CircuitBuilder::new(n);
    let a = |i: usize| i as u32;
    let b = |i: usize| (bits + i) as u32;
    let p = |i: usize| (2 * bits + i) as u32;
    let carry = (4 * bits) as u32;
    let carry2 = (4 * bits + 1) as u32;

    // Schoolbook: for each partial product a_i * b_j, add into p[i+j] with
    // carry propagation into p[i+j+1] via a doubly-controlled ripple.
    for i in 0..bits {
        for j in 0..bits {
            let k = i + j;
            // carry = a_i AND b_j (partial product bit).
            bld.ccx(a(i), b(j), carry);
            // p[k] += carry, with carry-out in carry2.
            bld.ccx(carry, p(k), carry2);
            bld.cx(carry, p(k));
            if k + 1 < 2 * bits {
                // propagate one level of carry.
                bld.cx(carry2, p(k + 1));
            }
            // Uncompute scratch.
            bld.ccx(carry, p(k), carry2); // note: approximate uncompute of ripple
            bld.ccx(a(i), b(j), carry);
        }
    }
    bld.build()
}

/// SQRT: Grover search for the square root `r` of a constant modulo
/// `2^bits` [Grover 1998 / QASMBench `sqrt_n18` family].
///
/// Register layout: `bits` search qubits, `bits` result/workspace qubits,
/// and `2` ancillas; `iterations` Grover rounds of a squaring-comparison
/// oracle (Toffoli cascades) plus the diffusion operator.
pub fn grover_sqrt(bits: usize, iterations: usize) -> Circuit {
    assert!(bits >= 3);
    let n = 2 * bits + 2;
    let mut b = CircuitBuilder::new(n);
    let search: Vec<u32> = (0..bits as u32).collect();
    let work: Vec<u32> = (bits as u32..2 * bits as u32).collect();
    let anc = [(2 * bits) as u32, (2 * bits + 1) as u32];

    for &q in &search {
        b.h(q);
    }
    for _ in 0..iterations {
        // Oracle: compute pairwise products of search bits into workspace
        // (a squaring-like Toffoli cascade), phase-kick, uncompute.
        for i in 0..bits {
            let j = (i + 1) % bits;
            b.ccx(search[i], search[j], work[i]);
        }
        for i in 0..bits - 1 {
            b.cx(work[i], work[i + 1]);
        }
        // Phase flip when the top workspace bits agree.
        b.ccx(work[bits - 2], work[bits - 1], anc[0]);
        b.z(anc[0]);
        b.ccx(work[bits - 2], work[bits - 1], anc[0]);
        // Uncompute.
        for i in (0..bits - 1).rev() {
            b.cx(work[i], work[i + 1]);
        }
        for i in (0..bits).rev() {
            let j = (i + 1) % bits;
            b.ccx(search[i], search[j], work[i]);
        }
        // Diffusion over the search register.
        for &q in &search {
            b.h(q);
            b.x(q);
        }
        let (&target, controls) = search.split_last().unwrap();
        b.h(target);
        // Workspace qubits are uncomputed (|0>) here, so they serve as the
        // clean ancillas the Toffoli ladder needs.
        let mut ladder_ancillas = anc.to_vec();
        ladder_ancillas.extend_from_slice(&work);
        b.mcx(controls, target, &ladder_ancillas);
        b.h(target);
        for &q in &search {
            b.x(q);
            b.h(q);
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adder_matches_table3_size() {
        let c = ripple_carry_adder(4);
        assert_eq!(c.num_qubits(), 9);
        assert!(c.cz_count() > 0);
    }

    #[test]
    fn adder_cz_count_scales_linearly() {
        // 2 MAJ + 2 UMA chains of `bits` each, 2 Toffoli-equivalents per bit.
        let c2 = ripple_carry_adder(2);
        let c4 = ripple_carry_adder(4);
        assert!(c4.cz_count() > c2.cz_count());
        assert_eq!(c4.cz_count() % 2, 0);
    }

    #[test]
    fn multiplier_matches_table3_size() {
        let c = multiplier(2);
        assert_eq!(c.num_qubits(), 10);
        assert!(c.cz_count() >= 100, "cz = {}", c.cz_count());
    }

    #[test]
    fn sqrt_matches_table3_size() {
        let c = grover_sqrt(8, 2);
        assert_eq!(c.num_qubits(), 18);
        assert!(c.cz_count() >= 300, "cz = {}", c.cz_count());
    }

    #[test]
    fn generators_are_deterministic() {
        assert_eq!(ripple_carry_adder(4), ripple_carry_adder(4));
        assert_eq!(multiplier(2), multiplier(2));
        assert_eq!(grover_sqrt(8, 2), grover_sqrt(8, 2));
    }

    /// Functional check: the adder really adds on computational inputs.
    #[test]
    fn adder_computes_sums() {
        use parallax_circuit::Gate;
        use parallax_sim_check::check_adder;
        // 2-bit adder (5 qubits): verify b += a for all inputs.
        check_adder(2, ripple_carry_adder, Gate::x);
    }

    /// Mini statevector harness local to this crate's tests (the full
    /// simulator lives in `parallax-sim`, which depends on this crate, so
    /// tests here use a tiny standalone implementation).
    mod parallax_sim_check {
        use parallax_circuit::{Circuit, Gate, Mat2, C64};

        fn run(circuit: &Circuit, input: usize) -> Vec<C64> {
            let n = circuit.num_qubits();
            let mut amps = vec![C64::ZERO; 1 << n];
            amps[input] = C64::ONE;
            for g in circuit.gates() {
                match *g {
                    Gate::U3 { q, theta, phi, lam } => {
                        let m = Mat2::u3(theta, phi, lam);
                        let stride = 1usize << q;
                        let mut base = 0;
                        while base < amps.len() {
                            for i in base..base + stride {
                                let (a0, a1) = (amps[i], amps[i + stride]);
                                amps[i] = m.m[0] * a0 + m.m[1] * a1;
                                amps[i + stride] = m.m[2] * a0 + m.m[3] * a1;
                            }
                            base += stride << 1;
                        }
                    }
                    Gate::Cz { a, b } => {
                        let mask = (1usize << a) | (1usize << b);
                        for (i, amp) in amps.iter_mut().enumerate() {
                            if i & mask == mask {
                                *amp = -*amp;
                            }
                        }
                    }
                }
            }
            amps
        }

        pub fn check_adder(bits: usize, gen: impl Fn(usize) -> Circuit, _x: impl Fn(u32) -> Gate) {
            let circuit = gen(bits);
            let n = circuit.num_qubits();
            for a_val in 0..(1usize << bits) {
                for b_val in 0..(1usize << bits) {
                    // Build the input basis index: interleaved layout.
                    let mut idx = 0usize;
                    for i in 0..bits {
                        if (a_val >> i) & 1 == 1 {
                            idx |= 1 << (2 * i + 2);
                        }
                        if (b_val >> i) & 1 == 1 {
                            idx |= 1 << (2 * i + 1);
                        }
                    }
                    let amps = run(&circuit, idx);
                    // Find the (unique) output basis state.
                    let (out, amp) = amps
                        .iter()
                        .enumerate()
                        .max_by(|x, y| x.1.norm_sq().partial_cmp(&y.1.norm_sq()).unwrap())
                        .unwrap();
                    assert!(amp.norm_sq() > 0.999, "not a basis permutation");
                    // Decode b' (sum bits live at b positions; carry-out is
                    // the top bit of the modular sum in-register).
                    let mut b_out = 0usize;
                    for i in 0..bits {
                        if (out >> (2 * i + 1)) & 1 == 1 {
                            b_out |= 1 << i;
                        }
                    }
                    let expected = (a_val + b_val) % (1 << bits);
                    assert_eq!(b_out, expected, "adder({bits}): {a_val} + {b_val} gave {b_out}");
                    // `a` register must be restored.
                    let mut a_out = 0usize;
                    for i in 0..bits {
                        if (out >> (2 * i + 2)) & 1 == 1 {
                            a_out |= 1 << i;
                        }
                    }
                    assert_eq!(a_out, a_val, "a register clobbered");
                    let _ = n;
                }
            }
        }
    }
}
