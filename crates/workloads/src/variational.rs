//! Variational/chemistry benchmarks: GCM (generator coordinate method),
//! VQE (variational quantum eigensolver), and QGAN (quantum GAN).

use parallax_circuit::{Circuit, CircuitBuilder};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// GCM: generator-coordinate-method circuit [QASMBench `gcm`]: a deep
/// hardware-efficient ansatz of single-qubit rotation layers and
/// nearest-neighbour CX ladders (chemistry circuits of this family are
/// dominated by long entangling ladders).
pub fn gcm(n: usize, layers: usize, seed: u64) -> Circuit {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = CircuitBuilder::new(n);
    for _ in 0..layers {
        for q in 0..n as u32 {
            b.ry(rng.random::<f64>() * std::f64::consts::PI, q);
            b.rz(rng.random::<f64>() * std::f64::consts::PI, q);
        }
        for i in 0..(n - 1) as u32 {
            b.cx(i, i + 1);
        }
    }
    b.build()
}

/// VQE: variational quantum eigensolver with an all-to-all entangling
/// ansatz [QASMBench `vqe_uccsd` family]. Each repetition applies
/// single-qubit rotations followed by CX between every qubit pair —
/// the paper's VQE instance has ~450,000 gates and is the stress test
/// baselines fail to compile within 24 h.
pub fn vqe(n: usize, reps: usize, seed: u64) -> Circuit {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = CircuitBuilder::new(n);
    for _ in 0..reps {
        for q in 0..n as u32 {
            b.ry(rng.random::<f64>() * std::f64::consts::PI, q);
        }
        for i in 0..n as u32 {
            for j in (i + 1)..n as u32 {
                b.cx(i, j);
            }
        }
    }
    b.build()
}

/// QGAN: quantum generative adversarial network [QASMBench `qgan`]: a
/// generator block over the first half of the register and a discriminator
/// block spanning all qubits, each a rotation layer plus a CX ladder with
/// cross-register couplings.
pub fn qgan(n: usize, layers: usize, seed: u64) -> Circuit {
    assert!(n >= 4);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = CircuitBuilder::new(n);
    let half = n / 2;
    for _ in 0..layers {
        // Generator on the lower half.
        for q in 0..half as u32 {
            b.ry(rng.random::<f64>() * std::f64::consts::PI, q);
        }
        for i in 0..(half - 1) as u32 {
            b.cx(i, i + 1);
        }
        // Discriminator across everything.
        for q in half as u32..n as u32 {
            b.ry(rng.random::<f64>() * std::f64::consts::PI, q);
        }
        for i in half as u32..(n - 1) as u32 {
            b.cx(i, i + 1);
        }
        // Cross couplings generator -> discriminator.
        for i in 0..half as u32 {
            b.cx(i, i + half as u32);
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gcm_matches_table3_size() {
        let c = gcm(13, 44, 1);
        assert_eq!(c.num_qubits(), 13);
        // 44 layers x 12 CX = 528 CZ, the paper's Parallax count exactly.
        assert_eq!(c.cz_count(), 528);
    }

    #[test]
    fn vqe_matches_table3_size() {
        // Full-size instance: 28 qubits, 378 CX per rep.
        let c = vqe(28, 4, 1);
        assert_eq!(c.num_qubits(), 28);
        assert_eq!(c.cz_count(), 4 * 378);
        // The experiment harness scales reps up to ~500 for the paper's
        // ~190k CZ; keep unit tests small.
    }

    #[test]
    fn qgan_matches_table3_size() {
        let c = qgan(39, 5, 1);
        assert_eq!(c.num_qubits(), 39);
        assert!(c.cz_count() >= 150 && c.cz_count() <= 300, "cz = {}", c.cz_count());
    }

    #[test]
    fn connectivity_profiles_differ() {
        // GCM is a chain; VQE is all-to-all.
        let g = gcm(8, 2, 0);
        let v = vqe(8, 1, 0);
        assert!(g.connectivity().iter().max().unwrap() <= &2);
        assert_eq!(*v.connectivity().iter().min().unwrap(), 7);
    }

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(gcm(13, 4, 9), gcm(13, 4, 9));
        assert_eq!(vqe(8, 2, 9), vqe(8, 2, 9));
        assert_eq!(qgan(10, 2, 9), qgan(10, 2, 9));
        assert_ne!(gcm(13, 4, 1), gcm(13, 4, 2));
    }
}
