//! Error-correction and state-preparation benchmarks: QEC (repetition
//! code), SECA (Shor's 9-qubit error-correction algorithm), and WST
//! (W-state preparation and assessment).

use parallax_circuit::{Circuit, CircuitBuilder};

/// QEC: bit-flip repetition code of distance `d` with `rounds` syndrome
/// extraction rounds [QASMBench `qec` family]. Uses `d` data qubits
/// interleaved with `d - 1` syndrome ancillas (17 qubits for `d = 9`).
pub fn repetition_code(d: usize, rounds: usize) -> Circuit {
    assert!(d >= 2);
    let n = 2 * d - 1;
    let mut b = CircuitBuilder::new(n);
    let data = |i: usize| (2 * i) as u32;
    let synd = |i: usize| (2 * i + 1) as u32;
    // Encode |+> into the logical qubit.
    b.h(data(0));
    for i in 1..d {
        b.cx(data(0), data(i));
    }
    for _ in 0..rounds {
        for i in 0..d - 1 {
            b.cx(data(i), synd(i));
            b.cx(data(i + 1), synd(i));
        }
    }
    b.build()
}

/// SECA: Shor's 9-qubit error-correction algorithm [QASMBench `seca_n11`]:
/// encode one logical qubit into Shor's code (phase blocks of three
/// bit-flip triples), apply a correctable error, decode, and majority-vote
/// with two work ancillas (11 qubits total).
pub fn shor_code(n_extra_ancillas: usize) -> Circuit {
    let n = 9 + n_extra_ancillas;
    let mut b = CircuitBuilder::new(n);
    // Encode: block leaders 0, 3, 6.
    b.cx(0, 3);
    b.cx(0, 6);
    b.h(0);
    b.h(3);
    b.h(6);
    for blk in [0u32, 3, 6] {
        b.cx(blk, blk + 1);
        b.cx(blk, blk + 2);
    }
    // Channel error on qubit 4 (bit+phase flip).
    b.x(4);
    b.z(4);
    // Decode.
    for blk in [0u32, 3, 6] {
        b.cx(blk, blk + 1);
        b.cx(blk, blk + 2);
        b.ccx(blk + 2, blk + 1, blk);
    }
    b.h(0);
    b.h(3);
    b.h(6);
    b.cx(0, 3);
    b.cx(0, 6);
    b.ccx(6, 3, 0);
    // Ancilla-assisted logical readout check (uses the extra ancillas).
    if n_extra_ancillas >= 2 {
        let a0 = 9u32;
        let a1 = 10u32;
        b.cx(0, a0);
        b.cx(0, a1);
    }
    b.build()
}

/// WST: W-state preparation over `n` qubits [Fleischhauer & Lukin
/// formulation]: a cascade of controlled rotations distributing one
/// excitation uniformly, then an assessment CX chain.
pub fn w_state(n: usize) -> Circuit {
    assert!(n >= 2);
    let mut b = CircuitBuilder::new(n);
    b.x(0);
    for i in 0..(n - 1) as u32 {
        // Rotation that splits off 1/(n-i) of the remaining amplitude.
        let remaining = (n as f64 - i as f64).recip();
        let theta = 2.0 * remaining.sqrt().acos();
        b.cry(theta, i, i + 1);
        b.cx(i + 1, i);
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use parallax_circuit::{Gate, Mat2, C64};

    #[test]
    fn qec_matches_table3_size() {
        let c = repetition_code(9, 2);
        assert_eq!(c.num_qubits(), 17);
        // Encode (8 CX) + 2 rounds x 16 CX = 40 CZ.
        assert_eq!(c.cz_count(), 8 + 2 * 16);
    }

    #[test]
    fn seca_matches_table3_size() {
        let c = shor_code(2);
        assert_eq!(c.num_qubits(), 11);
        assert!(c.cz_count() >= 40, "cz = {}", c.cz_count());
    }

    #[test]
    fn wst_matches_table3_size() {
        let c = w_state(27);
        assert_eq!(c.num_qubits(), 27);
        // 26 cry (2 CZ each) + 26 cx = 78 CZ.
        assert_eq!(c.cz_count(), 26 * 3);
    }

    fn simulate_small(c: &Circuit) -> Vec<C64> {
        let n = c.num_qubits();
        assert!(n <= 12);
        let mut amps = vec![C64::ZERO; 1 << n];
        amps[0] = C64::ONE;
        for g in c.gates() {
            match *g {
                Gate::U3 { q, theta, phi, lam } => {
                    let m = Mat2::u3(theta, phi, lam);
                    let stride = 1usize << q;
                    let mut base = 0;
                    while base < amps.len() {
                        for i in base..base + stride {
                            let (a0, a1) = (amps[i], amps[i + stride]);
                            amps[i] = m.m[0] * a0 + m.m[1] * a1;
                            amps[i + stride] = m.m[2] * a0 + m.m[3] * a1;
                        }
                        base += stride << 1;
                    }
                }
                Gate::Cz { a, b } => {
                    let mask = (1usize << a) | (1usize << b);
                    for (i, amp) in amps.iter_mut().enumerate() {
                        if i & mask == mask {
                            *amp = -*amp;
                        }
                    }
                }
            }
        }
        amps
    }

    /// Functional: the W-state generator produces exactly the W state.
    #[test]
    fn w_state_amplitudes_are_uniform_one_hot() {
        for n in [2usize, 3, 5, 8] {
            let amps = simulate_small(&w_state(n));
            let expect = 1.0 / n as f64;
            for (i, a) in amps.iter().enumerate() {
                let p = a.norm_sq();
                if i.count_ones() == 1 {
                    assert!((p - expect).abs() < 1e-9, "n={n}, i={i:b}, p={p}");
                } else {
                    assert!(p < 1e-9, "n={n}: non-one-hot state {i:b} has p={p}");
                }
            }
        }
    }

    /// Functional: Shor code corrects the injected error — the logical
    /// qubit (q0) returns to |0> and all code qubits disentangle.
    #[test]
    fn shor_code_corrects_injected_error() {
        let amps = simulate_small(&shor_code(0));
        // q0 must be |0>: total probability of states with bit 0 set ~ 0.
        let p_q0_one: f64 =
            amps.iter().enumerate().filter(|(i, _)| i & 1 == 1).map(|(_, a)| a.norm_sq()).sum();
        assert!(p_q0_one < 1e-9, "p(q0=1) = {p_q0_one}");
    }

    #[test]
    fn repetition_code_entangles_data_qubits() {
        let amps = simulate_small(&repetition_code(3, 1));
        // GHZ-encoded |+>: only all-zero and all-one data patterns (with
        // syndromes reset to 0 after an even number of flips... syndromes
        // read 0 for both branches).
        let nonzero: Vec<usize> =
            amps.iter().enumerate().filter(|(_, a)| a.norm_sq() > 1e-9).map(|(i, _)| i).collect();
        assert_eq!(nonzero.len(), 2, "{nonzero:?}");
    }

    #[test]
    fn deterministic() {
        assert_eq!(w_state(10), w_state(10));
        assert_eq!(shor_code(2), shor_code(2));
        assert_eq!(repetition_code(9, 2), repetition_code(9, 2));
    }
}
