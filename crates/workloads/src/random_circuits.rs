//! Sampled-circuit benchmarks: ADV (Google quantum advantage), QV (IBM
//! quantum volume), and HLF (hidden linear function).

use parallax_circuit::{Circuit, CircuitBuilder};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// ADV: Google quantum-advantage-style random circuit [Arute et al. 2019]
/// on a `side x side` grid (9 qubits for `side = 3` as in Table III).
///
/// Alternates layers of random single-qubit gates from
/// {sqrt-X, sqrt-Y, sqrt-W} with two-qubit gates along grid couplings in a
/// rotating A/B/C/D pattern, for `cycles` cycles.
pub fn quantum_advantage(side: usize, cycles: usize, seed: u64) -> Circuit {
    let n = side * side;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = CircuitBuilder::new(n);
    let q = |x: usize, y: usize| (y * side + x) as u32;
    let sqrt_gates: [(f64, f64, f64); 3] = [
        // sqrt-X, sqrt-Y, sqrt-W as u3 angles (up to global phase).
        (std::f64::consts::FRAC_PI_2, -std::f64::consts::FRAC_PI_2, std::f64::consts::FRAC_PI_2),
        (std::f64::consts::FRAC_PI_2, 0.0, 0.0),
        (std::f64::consts::FRAC_PI_2, -std::f64::consts::FRAC_PI_4, std::f64::consts::FRAC_PI_4),
    ];
    for cycle in 0..cycles {
        for qi in 0..n as u32 {
            let (t, p, l) = sqrt_gates[rng.random_range(0..3usize)];
            b.u3(t, p, l, qi);
        }
        // Coupler pattern rotates through 4 orientations.
        match cycle % 4 {
            0 => {
                for y in 0..side {
                    for x in (0..side - 1).step_by(2) {
                        b.cz(q(x, y), q(x + 1, y));
                    }
                }
            }
            1 => {
                for y in (0..side - 1).step_by(2) {
                    for x in 0..side {
                        b.cz(q(x, y), q(x, y + 1));
                    }
                }
            }
            2 => {
                for y in 0..side {
                    for x in (1..side - 1).step_by(2) {
                        b.cz(q(x, y), q(x + 1, y));
                    }
                }
            }
            _ => {
                for y in (1..side - 1).step_by(2) {
                    for x in 0..side {
                        b.cz(q(x, y), q(x, y + 1));
                    }
                }
            }
        }
    }
    b.build()
}

/// QV: IBM quantum volume circuit [Cross et al.]: `depth` layers, each a
/// random qubit permutation followed by a generic SU(4) block (three CX
/// plus single-qubit rotations) on every adjacent pair.
pub fn quantum_volume(n: usize, depth: usize, seed: u64) -> Circuit {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = CircuitBuilder::new(n);
    let mut order: Vec<u32> = (0..n as u32).collect();
    for _ in 0..depth {
        order.shuffle(&mut rng);
        for pair in order.chunks_exact(2) {
            su4_block(&mut b, pair[0], pair[1], &mut rng);
        }
    }
    b.build()
}

/// A Haar-ish SU(4) block in the canonical 3-CX KAK template.
fn su4_block(b: &mut CircuitBuilder, q0: u32, q1: u32, rng: &mut StdRng) {
    let mut ru3 = |b: &mut CircuitBuilder, q: u32| {
        b.u3(
            rng.random::<f64>() * std::f64::consts::PI,
            rng.random::<f64>() * 2.0 * std::f64::consts::PI,
            rng.random::<f64>() * 2.0 * std::f64::consts::PI,
            q,
        );
    };
    ru3(b, q0);
    ru3(b, q1);
    b.cx(q0, q1);
    ru3(b, q0);
    ru3(b, q1);
    b.cx(q1, q0);
    ru3(b, q0);
    ru3(b, q1);
    b.cx(q0, q1);
    ru3(b, q0);
    ru3(b, q1);
}

/// HLF: hidden linear function [Bravyi, Gosset, König 2018]: `H` on all
/// qubits, CZ along the edges of a random symmetric adjacency (density
/// `edge_prob`), `S` on a random diagonal subset, `H` on all qubits.
pub fn hidden_linear_function(n: usize, edge_prob: f64, seed: u64) -> Circuit {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = CircuitBuilder::new(n);
    for q in 0..n as u32 {
        b.h(q);
    }
    for i in 0..n as u32 {
        for j in (i + 1)..n as u32 {
            if rng.random::<f64>() < edge_prob {
                b.cz(i, j);
            }
        }
    }
    for q in 0..n as u32 {
        if rng.random::<f64>() < 0.5 {
            b.s(q);
        }
    }
    for q in 0..n as u32 {
        b.h(q);
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adv_matches_table3_size() {
        let c = quantum_advantage(3, 8, 1);
        assert_eq!(c.num_qubits(), 9);
        // 8 cycles x ~4 couplings: in the Fig. 9 ballpark of 32.
        assert!(c.cz_count() >= 24 && c.cz_count() <= 48, "cz = {}", c.cz_count());
    }

    #[test]
    fn qv_matches_table3_size() {
        let c = quantum_volume(32, 32, 1);
        assert_eq!(c.num_qubits(), 32);
        // 32 layers x 16 pairs x 3 CX = 1536 (paper's Parallax count: 1488).
        assert_eq!(c.cz_count(), 32 * 16 * 3);
    }

    #[test]
    fn hlf_matches_table3_size() {
        let c = hidden_linear_function(10, 0.9, 1);
        assert_eq!(c.num_qubits(), 10);
        assert!(c.cz_count() >= 30 && c.cz_count() <= 45, "cz = {}", c.cz_count());
    }

    #[test]
    fn seeded_determinism() {
        assert_eq!(quantum_advantage(3, 8, 5), quantum_advantage(3, 8, 5));
        assert_eq!(quantum_volume(8, 4, 5), quantum_volume(8, 4, 5));
        assert_eq!(hidden_linear_function(10, 0.5, 5), hidden_linear_function(10, 0.5, 5));
    }

    #[test]
    fn different_seeds_differ() {
        assert_ne!(quantum_volume(8, 4, 1), quantum_volume(8, 4, 2));
    }

    #[test]
    fn qv_odd_width_leaves_one_qubit_idle_per_layer() {
        let c = quantum_volume(5, 3, 0);
        // 2 pairs per layer x 3 layers x 3 CX.
        assert_eq!(c.cz_count(), 2 * 3 * 3);
    }

    #[test]
    fn hlf_density_extremes() {
        let empty = hidden_linear_function(8, 0.0, 0);
        assert_eq!(empty.cz_count(), 0);
        let full = hidden_linear_function(8, 1.0, 0);
        assert_eq!(full.cz_count(), 28);
    }
}
