//! Typed AST for OpenQASM 2.0 programs.

use crate::expr::Expr;
use std::collections::HashMap;

/// A quantum or classical argument to a gate/measure/barrier statement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Argument {
    /// A whole register, e.g. `q` (implicitly broadcast in QASM 2.0).
    Register(String),
    /// One element of a register, e.g. `q[3]`.
    Indexed(String, usize),
}

impl Argument {
    /// The register name referenced by this argument.
    pub fn register(&self) -> &str {
        match self {
            Argument::Register(r) | Argument::Indexed(r, _) => r,
        }
    }
}

/// One statement in the body of a user-defined gate.
#[derive(Debug, Clone, PartialEq)]
pub struct GateBodyStmt {
    /// Gate name being applied (built-in or previously defined).
    pub name: String,
    /// Parameter expressions (may reference the enclosing gate's formals).
    pub params: Vec<Expr>,
    /// Indices into the enclosing gate's formal qubit list.
    pub qubits: Vec<String>,
}

/// A user-defined gate (`gate name(params) qargs { ... }`).
#[derive(Debug, Clone, PartialEq)]
pub struct GateDef {
    /// Gate name.
    pub name: String,
    /// Formal angle parameters.
    pub params: Vec<String>,
    /// Formal qubit arguments.
    pub qubits: Vec<String>,
    /// Body statements; empty for `opaque` declarations and for
    /// `gate ... {}` identities.
    pub body: Vec<GateBodyStmt>,
    /// True if declared with `opaque` (no body available).
    pub opaque: bool,
}

/// A top-level statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    /// `include "file";` — recorded verbatim, not resolved.
    Include(String),
    /// `qreg name[size];`
    QRegDecl { name: String, size: usize },
    /// `creg name[size];`
    CRegDecl { name: String, size: usize },
    /// Definition of a user gate (also covers `opaque`).
    GateDef(GateDef),
    /// Application of a gate to arguments.
    GateCall { name: String, params: Vec<Expr>, args: Vec<Argument> },
    /// `measure q -> c;` (register or indexed forms).
    Measure { qubit: Argument, target: Argument },
    /// `barrier args;`
    Barrier(Vec<Argument>),
    /// `reset q;`
    Reset(Argument),
    /// `if (creg == value) <gate call>;`
    Conditional { creg: String, value: u64, then: Box<Statement> },
}

/// A parsed OpenQASM 2.0 program.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Program {
    /// Declared version (always 2.0 for this crate).
    pub version: String,
    /// All top-level statements in source order.
    pub statements: Vec<Statement>,
}

impl Program {
    /// Size of the quantum register `name`, if declared.
    pub fn qreg_size(&self, name: &str) -> Option<usize> {
        self.statements.iter().find_map(|s| match s {
            Statement::QRegDecl { name: n, size } if n == name => Some(*size),
            _ => None,
        })
    }

    /// Size of the classical register `name`, if declared.
    pub fn creg_size(&self, name: &str) -> Option<usize> {
        self.statements.iter().find_map(|s| match s {
            Statement::CRegDecl { name: n, size } if n == name => Some(*size),
            _ => None,
        })
    }

    /// All quantum register declarations in source order as `(name, size)`.
    pub fn qregs(&self) -> Vec<(String, usize)> {
        self.statements
            .iter()
            .filter_map(|s| match s {
                Statement::QRegDecl { name, size } => Some((name.clone(), *size)),
                _ => None,
            })
            .collect()
    }

    /// Total number of declared qubits across all quantum registers.
    pub fn total_qubits(&self) -> usize {
        self.qregs().iter().map(|(_, s)| s).sum()
    }

    /// Map from register name to the flat qubit-index offset of its first
    /// element, following declaration order (the convention used when
    /// lowering to a flat circuit).
    pub fn qubit_offsets(&self) -> HashMap<String, usize> {
        let mut map = HashMap::new();
        let mut offset = 0;
        for (name, size) in self.qregs() {
            map.insert(name, offset);
            offset += size;
        }
        map
    }

    /// All user gate definitions, keyed by name.
    pub fn gate_defs(&self) -> HashMap<String, GateDef> {
        self.statements
            .iter()
            .filter_map(|s| match s {
                Statement::GateDef(def) => Some((def.name.clone(), def.clone())),
                _ => None,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Program {
        Program {
            version: "2.0".into(),
            statements: vec![
                Statement::QRegDecl { name: "q".into(), size: 3 },
                Statement::QRegDecl { name: "anc".into(), size: 2 },
                Statement::CRegDecl { name: "c".into(), size: 3 },
            ],
        }
    }

    #[test]
    fn register_lookup() {
        let p = sample();
        assert_eq!(p.qreg_size("q"), Some(3));
        assert_eq!(p.qreg_size("anc"), Some(2));
        assert_eq!(p.qreg_size("nope"), None);
        assert_eq!(p.creg_size("c"), Some(3));
    }

    #[test]
    fn offsets_follow_declaration_order() {
        let p = sample();
        let off = p.qubit_offsets();
        assert_eq!(off["q"], 0);
        assert_eq!(off["anc"], 3);
        assert_eq!(p.total_qubits(), 5);
    }

    #[test]
    fn argument_register_name() {
        assert_eq!(Argument::Register("q".into()).register(), "q");
        assert_eq!(Argument::Indexed("q".into(), 7).register(), "q");
    }
}
