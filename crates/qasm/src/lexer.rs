//! Hand-written lexer for OpenQASM 2.0.

use crate::error::{QasmError, Result};

/// The kind of a lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// `OPENQASM` keyword.
    OpenQasm,
    /// `include` keyword.
    Include,
    /// `qreg` keyword.
    QReg,
    /// `creg` keyword.
    CReg,
    /// `gate` keyword.
    Gate,
    /// `opaque` keyword.
    Opaque,
    /// `measure` keyword.
    Measure,
    /// `barrier` keyword.
    Barrier,
    /// `reset` keyword.
    Reset,
    /// `if` keyword.
    If,
    /// `pi` constant.
    Pi,
    /// Identifier such as a gate or register name.
    Ident(String),
    /// Real literal (also covers scientific notation).
    Real(f64),
    /// Non-negative integer literal.
    Int(u64),
    /// Double-quoted string literal (file name in `include`).
    Str(String),
    /// `;`
    Semicolon,
    /// `,`
    Comma,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `->`
    Arrow,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `^`
    Caret,
    /// `==`
    EqEq,
    /// End of input.
    Eof,
}

/// A token with its source location (1-based).
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// What the token is.
    pub kind: TokenKind,
    /// 1-based line.
    pub line: usize,
    /// 1-based column.
    pub col: usize,
}

/// Streaming lexer over QASM source text.
pub struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: usize,
    col: usize,
}

impl<'a> Lexer<'a> {
    /// Create a lexer over `source`.
    pub fn new(source: &'a str) -> Self {
        Self { src: source.as_bytes(), pos: 0, line: 1, col: 1 }
    }

    /// Lex the entire input, returning all tokens terminated by [`TokenKind::Eof`].
    pub fn tokenize(mut self) -> Result<Vec<Token>> {
        let mut out = Vec::new();
        loop {
            let tok = self.next_token()?;
            let done = tok.kind == TokenKind::Eof;
            out.push(tok);
            if done {
                return Ok(out);
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn peek2(&self) -> Option<u8> {
        self.src.get(self.pos + 1).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let c = self.peek()?;
        self.pos += 1;
        if c == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn skip_trivia(&mut self) {
        loop {
            match self.peek() {
                Some(c) if c.is_ascii_whitespace() => {
                    self.bump();
                }
                Some(b'/') if self.peek2() == Some(b'/') => {
                    while let Some(c) = self.peek() {
                        if c == b'\n' {
                            break;
                        }
                        self.bump();
                    }
                }
                _ => return,
            }
        }
    }

    fn next_token(&mut self) -> Result<Token> {
        self.skip_trivia();
        let (line, col) = (self.line, self.col);
        let mk = |kind| Token { kind, line, col };
        let Some(c) = self.peek() else {
            return Ok(mk(TokenKind::Eof));
        };
        let kind = match c {
            b';' => {
                self.bump();
                TokenKind::Semicolon
            }
            b',' => {
                self.bump();
                TokenKind::Comma
            }
            b'(' => {
                self.bump();
                TokenKind::LParen
            }
            b')' => {
                self.bump();
                TokenKind::RParen
            }
            b'[' => {
                self.bump();
                TokenKind::LBracket
            }
            b']' => {
                self.bump();
                TokenKind::RBracket
            }
            b'{' => {
                self.bump();
                TokenKind::LBrace
            }
            b'}' => {
                self.bump();
                TokenKind::RBrace
            }
            b'+' => {
                self.bump();
                TokenKind::Plus
            }
            b'*' => {
                self.bump();
                TokenKind::Star
            }
            b'/' => {
                self.bump();
                TokenKind::Slash
            }
            b'^' => {
                self.bump();
                TokenKind::Caret
            }
            b'-' => {
                self.bump();
                if self.peek() == Some(b'>') {
                    self.bump();
                    TokenKind::Arrow
                } else {
                    TokenKind::Minus
                }
            }
            b'=' => {
                self.bump();
                if self.peek() == Some(b'=') {
                    self.bump();
                    TokenKind::EqEq
                } else {
                    return Err(QasmError::new("expected '==' after '='", line, col));
                }
            }
            b'"' => {
                self.bump();
                let mut s = String::new();
                loop {
                    match self.bump() {
                        Some(b'"') => break,
                        Some(ch) => s.push(ch as char),
                        None => {
                            return Err(QasmError::new("unterminated string literal", line, col))
                        }
                    }
                }
                TokenKind::Str(s)
            }
            c if c.is_ascii_digit() || c == b'.' => self.lex_number(line, col)?,
            c if c.is_ascii_alphabetic() || c == b'_' => self.lex_word(),
            other => {
                return Err(QasmError::new(
                    format!("unexpected character '{}'", other as char),
                    line,
                    col,
                ))
            }
        };
        Ok(mk(kind))
    }

    fn lex_number(&mut self, line: usize, col: usize) -> Result<TokenKind> {
        let start = self.pos;
        let mut saw_dot = false;
        let mut saw_exp = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => {
                    self.bump();
                }
                b'.' if !saw_dot && !saw_exp => {
                    saw_dot = true;
                    self.bump();
                }
                b'e' | b'E' if !saw_exp => {
                    saw_exp = true;
                    self.bump();
                    if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                        self.bump();
                    }
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.src[start..self.pos]).expect("ascii slice");
        if saw_dot || saw_exp {
            text.parse::<f64>()
                .map(TokenKind::Real)
                .map_err(|_| QasmError::new(format!("invalid real literal '{text}'"), line, col))
        } else {
            text.parse::<u64>()
                .map(TokenKind::Int)
                .map_err(|_| QasmError::new(format!("invalid integer literal '{text}'"), line, col))
        }
    }

    fn lex_word(&mut self) -> TokenKind {
        let start = self.pos;
        while let Some(c) = self.peek() {
            if c.is_ascii_alphanumeric() || c == b'_' {
                self.bump();
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.src[start..self.pos]).expect("ascii slice");
        match text {
            "OPENQASM" => TokenKind::OpenQasm,
            "include" => TokenKind::Include,
            "qreg" => TokenKind::QReg,
            "creg" => TokenKind::CReg,
            "gate" => TokenKind::Gate,
            "opaque" => TokenKind::Opaque,
            "measure" => TokenKind::Measure,
            "barrier" => TokenKind::Barrier,
            "reset" => TokenKind::Reset,
            "if" => TokenKind::If,
            "pi" => TokenKind::Pi,
            _ => TokenKind::Ident(text.to_string()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        Lexer::new(src).tokenize().unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lexes_header() {
        assert_eq!(
            kinds("OPENQASM 2.0;"),
            vec![TokenKind::OpenQasm, TokenKind::Real(2.0), TokenKind::Semicolon, TokenKind::Eof]
        );
    }

    #[test]
    fn lexes_gate_application() {
        let k = kinds("cx q[0],q[1];");
        assert_eq!(k[0], TokenKind::Ident("cx".into()));
        assert_eq!(k[1], TokenKind::Ident("q".into()));
        assert_eq!(k[2], TokenKind::LBracket);
        assert_eq!(k[3], TokenKind::Int(0));
        assert_eq!(k[4], TokenKind::RBracket);
        assert_eq!(k[5], TokenKind::Comma);
    }

    #[test]
    fn lexes_angles_and_pi() {
        let k = kinds("u3(pi/2, -0.5, 1e-3) q[0];");
        assert!(k.contains(&TokenKind::Pi));
        assert!(k.contains(&TokenKind::Slash));
        assert!(k.contains(&TokenKind::Real(0.5)));
        assert!(k.contains(&TokenKind::Real(1e-3)));
    }

    #[test]
    fn skips_comments_and_whitespace() {
        let k = kinds("// a comment\n  qreg q[3]; // trailing\n");
        assert_eq!(
            k,
            vec![
                TokenKind::QReg,
                TokenKind::Ident("q".into()),
                TokenKind::LBracket,
                TokenKind::Int(3),
                TokenKind::RBracket,
                TokenKind::Semicolon,
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn lexes_arrow_and_measure() {
        let k = kinds("measure q -> c;");
        assert_eq!(k[0], TokenKind::Measure);
        assert_eq!(k[2], TokenKind::Arrow);
    }

    #[test]
    fn lexes_string_literal() {
        let k = kinds("include \"qelib1.inc\";");
        assert_eq!(k[1], TokenKind::Str("qelib1.inc".into()));
    }

    #[test]
    fn reports_location_of_bad_character() {
        let err = Lexer::new("qreg q[2];\n  @").tokenize().unwrap_err();
        assert_eq!(err.line, 2);
        assert_eq!(err.col, 3);
    }

    #[test]
    fn unterminated_string_errors() {
        assert!(Lexer::new("include \"abc").tokenize().is_err());
    }

    #[test]
    fn scientific_notation_variants() {
        assert_eq!(kinds("1.5E+2")[0], TokenKind::Real(150.0));
        assert_eq!(kinds("2e3")[0], TokenKind::Real(2000.0));
        assert_eq!(kinds("7")[0], TokenKind::Int(7));
    }

    #[test]
    fn equality_operator() {
        let k = kinds("if (c == 1) x q[0];");
        assert!(k.contains(&TokenKind::EqEq));
        assert!(k.contains(&TokenKind::If));
    }
}
