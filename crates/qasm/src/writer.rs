//! Render a [`Program`] back to OpenQASM 2.0 text.
//!
//! The writer is the inverse of the parser up to whitespace and numeric
//! formatting; `parse(write_program(&p))` reproduces the same AST for
//! programs with fully evaluated (numeric) parameters.

use crate::ast::{Argument, GateDef, Program, Statement};
use crate::expr::Expr;
use std::fmt::Write as _;

/// Render `program` as OpenQASM 2.0 source text.
pub fn write_program(program: &Program) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "OPENQASM {};", program.version);
    for stmt in &program.statements {
        write_statement(&mut out, stmt);
    }
    out
}

/// Render `program` with every top-level gate-call parameter replaced by
/// its ordinal slot marker (`$0`, `$1`, ...), in program order.
///
/// Two programs that differ only in numeric rotation angles render to the
/// same structural text; this is the basis of
/// [`structural_program_hash`](crate::hash::structural_program_hash), the
/// fingerprint variational parameter sweeps share. Gate *definitions* keep
/// their symbolic parameters verbatim — they are structure, not values.
pub fn write_structural_program(program: &Program) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "OPENQASM {};", program.version);
    let mut slot = 0usize;
    for stmt in &program.statements {
        write_structural_statement(&mut out, stmt, &mut slot);
    }
    out
}

fn write_structural_statement(out: &mut String, stmt: &Statement, slot: &mut usize) {
    match stmt {
        Statement::GateCall { name, params, args } => {
            let _ = write!(out, "{name}");
            if !params.is_empty() {
                let rendered: Vec<String> = params
                    .iter()
                    .map(|_| {
                        let s = format!("${slot}");
                        *slot += 1;
                        s
                    })
                    .collect();
                let _ = write!(out, "({})", rendered.join(","));
            }
            let _ = writeln!(out, " {};", args_str(args));
        }
        Statement::Conditional { creg, value, then } => {
            let _ = write!(out, "if ({creg} == {value}) ");
            write_structural_statement(out, then, slot);
        }
        other => write_statement(out, other),
    }
}

fn write_statement(out: &mut String, stmt: &Statement) {
    match stmt {
        Statement::Include(file) => {
            let _ = writeln!(out, "include \"{file}\";");
        }
        Statement::QRegDecl { name, size } => {
            let _ = writeln!(out, "qreg {name}[{size}];");
        }
        Statement::CRegDecl { name, size } => {
            let _ = writeln!(out, "creg {name}[{size}];");
        }
        Statement::GateDef(def) => write_gate_def(out, def),
        Statement::GateCall { name, params, args } => {
            let _ = write!(out, "{name}");
            write_params(out, params);
            let _ = writeln!(out, " {};", args_str(args));
        }
        Statement::Measure { qubit, target } => {
            let _ = writeln!(out, "measure {} -> {};", arg_str(qubit), arg_str(target));
        }
        Statement::Barrier(args) => {
            let _ = writeln!(out, "barrier {};", args_str(args));
        }
        Statement::Reset(arg) => {
            let _ = writeln!(out, "reset {};", arg_str(arg));
        }
        Statement::Conditional { creg, value, then } => {
            let _ = write!(out, "if ({creg} == {value}) ");
            write_statement(out, then);
        }
    }
}

fn write_gate_def(out: &mut String, def: &GateDef) {
    let kw = if def.opaque { "opaque" } else { "gate" };
    let _ = write!(out, "{kw} {}", def.name);
    if !def.params.is_empty() {
        let _ = write!(out, "({})", def.params.join(","));
    }
    let _ = write!(out, " {}", def.qubits.join(","));
    if def.opaque {
        let _ = writeln!(out, ";");
        return;
    }
    let _ = writeln!(out, " {{");
    for b in &def.body {
        let _ = write!(out, "  {}", b.name);
        write_params(out, &b.params);
        let _ = writeln!(out, " {};", b.qubits.join(","));
    }
    let _ = writeln!(out, "}}");
}

fn write_params(out: &mut String, params: &[Expr]) {
    if params.is_empty() {
        return;
    }
    let rendered: Vec<String> = params.iter().map(expr_str).collect();
    let _ = write!(out, "({})", rendered.join(","));
}

fn expr_str(e: &Expr) -> String {
    // Prefer a compact numeric rendering when the expression is constant;
    // fall back to the structural Display for symbolic expressions.
    match e.eval_const() {
        Ok(v) => format_f64(v),
        Err(_) => e.to_string(),
    }
}

fn format_f64(v: f64) -> String {
    // Round-trippable formatting: shortest representation that parses back
    // to the same f64.
    let s = format!("{v}");
    if s.contains('.') || s.contains('e') || s.contains("inf") || s.contains("NaN") {
        s
    } else {
        format!("{s}.0")
    }
}

fn arg_str(a: &Argument) -> String {
    match a {
        Argument::Register(r) => r.clone(),
        Argument::Indexed(r, i) => format!("{r}[{i}]"),
    }
}

fn args_str(args: &[Argument]) -> String {
    args.iter().map(arg_str).collect::<Vec<_>>().join(",")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;

    #[test]
    fn roundtrip_simple_program() {
        let src = "OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[3];\ncreg c[3];\nh q[0];\ncx q[0],q[1];\nmeasure q -> c;\n";
        let p1 = parse(src).unwrap();
        let rendered = write_program(&p1);
        let p2 = parse(&rendered).unwrap();
        assert_eq!(p1, p2);
    }

    #[test]
    fn roundtrip_numeric_params() {
        let src = "OPENQASM 2.0;\nqreg q[1];\nu3(1.5707963267948966,0.0,3.141592653589793) q[0];\n";
        let p1 = parse(src).unwrap();
        let p2 = parse(&write_program(&p1)).unwrap();
        match (&p1.statements[1], &p2.statements[1]) {
            (Statement::GateCall { params: a, .. }, Statement::GateCall { params: b, .. }) => {
                for (x, y) in a.iter().zip(b) {
                    assert_eq!(x.eval_const().unwrap(), y.eval_const().unwrap());
                }
            }
            _ => panic!("expected gate calls"),
        }
    }

    #[test]
    fn roundtrip_gate_def_and_conditional() {
        let src = "OPENQASM 2.0;\nqreg q[2];\ncreg c[1];\ngate gg a,b { cx a,b; }\ngg q[0],q[1];\nif (c == 1) x q[0];\n";
        let p1 = parse(src).unwrap();
        let p2 = parse(&write_program(&p1)).unwrap();
        assert_eq!(p1.gate_defs()["gg"], p2.gate_defs()["gg"]);
        assert_eq!(p1.statements.len(), p2.statements.len());
    }

    #[test]
    fn integers_render_as_reals_for_reparse_stability() {
        assert_eq!(format_f64(2.0), "2.0");
        assert_eq!(format_f64(0.5), "0.5");
    }

    #[test]
    fn structural_rendering_slots_out_angles() {
        let src = "OPENQASM 2.0;\nqreg q[2];\ncreg c[1];\n\
                   u3(0.1,0.2,0.3) q[0];\ncz q[0],q[1];\n\
                   if (c == 1) u3(0.4,0.5,0.6) q[1];\n";
        let p = parse(src).unwrap();
        let s = write_structural_program(&p);
        assert!(s.contains("u3($0,$1,$2) q[0];"), "{s}");
        assert!(s.contains("if (c == 1) u3($3,$4,$5) q[1];"), "{s}");
        assert!(s.contains("cz q[0],q[1];"), "{s}");
        assert!(!s.contains("0.1"), "{s}");
    }
}
