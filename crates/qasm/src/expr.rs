//! Angle expressions appearing in gate parameter lists.
//!
//! OpenQASM 2.0 allows parameters such as `pi/2`, `-3*pi/4`, or, inside gate
//! bodies, symbolic references to the gate's formal parameters. [`Expr`] is a
//! small tree covering the full 2.0 grammar (binary arithmetic, negation,
//! unary functions, `pi`, literals, identifiers) with constant folding via
//! [`Expr::eval`].

use std::collections::HashMap;
use std::fmt;

/// Binary arithmetic operators allowed in QASM parameter expressions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Division.
    Div,
    /// Exponentiation (`^`).
    Pow,
}

/// Unary functions allowed in QASM parameter expressions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnaryFn {
    /// `sin(x)`
    Sin,
    /// `cos(x)`
    Cos,
    /// `tan(x)`
    Tan,
    /// `exp(x)`
    Exp,
    /// `ln(x)`
    Ln,
    /// `sqrt(x)`
    Sqrt,
}

impl UnaryFn {
    /// Look up a function by QASM name.
    pub fn from_name(name: &str) -> Option<Self> {
        Some(match name {
            "sin" => Self::Sin,
            "cos" => Self::Cos,
            "tan" => Self::Tan,
            "exp" => Self::Exp,
            "ln" => Self::Ln,
            "sqrt" => Self::Sqrt,
            _ => return None,
        })
    }

    fn apply(self, x: f64) -> f64 {
        match self {
            Self::Sin => x.sin(),
            Self::Cos => x.cos(),
            Self::Tan => x.tan(),
            Self::Exp => x.exp(),
            Self::Ln => x.ln(),
            Self::Sqrt => x.sqrt(),
        }
    }
}

/// A parameter expression tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Literal number.
    Num(f64),
    /// The constant `pi`.
    Pi,
    /// Reference to a formal gate parameter (only valid inside gate bodies).
    Param(String),
    /// Negation.
    Neg(Box<Expr>),
    /// Binary operation.
    Bin(BinOp, Box<Expr>, Box<Expr>),
    /// Unary function application.
    Func(UnaryFn, Box<Expr>),
}

impl Expr {
    /// Evaluate with no free parameters. Errors if a [`Expr::Param`] appears.
    pub fn eval_const(&self) -> Result<f64, String> {
        self.eval(&HashMap::new())
    }

    /// Evaluate with the given parameter bindings.
    pub fn eval(&self, params: &HashMap<String, f64>) -> Result<f64, String> {
        Ok(match self {
            Expr::Num(x) => *x,
            Expr::Pi => std::f64::consts::PI,
            Expr::Param(name) => *params
                .get(name)
                .ok_or_else(|| format!("unbound parameter '{name}' in expression"))?,
            Expr::Neg(e) => -e.eval(params)?,
            Expr::Bin(op, a, b) => {
                let (a, b) = (a.eval(params)?, b.eval(params)?);
                match op {
                    BinOp::Add => a + b,
                    BinOp::Sub => a - b,
                    BinOp::Mul => a * b,
                    BinOp::Div => a / b,
                    BinOp::Pow => a.powf(b),
                }
            }
            Expr::Func(f, e) => f.apply(e.eval(params)?),
        })
    }

    /// Substitute formal parameters with concrete expressions (used when a
    /// user-defined gate is expanded at a call site).
    pub fn substitute(&self, bindings: &HashMap<String, Expr>) -> Expr {
        match self {
            Expr::Num(_) | Expr::Pi => self.clone(),
            Expr::Param(name) => {
                bindings.get(name).cloned().unwrap_or_else(|| Expr::Param(name.clone()))
            }
            Expr::Neg(e) => Expr::Neg(Box::new(e.substitute(bindings))),
            Expr::Bin(op, a, b) => {
                Expr::Bin(*op, Box::new(a.substitute(bindings)), Box::new(b.substitute(bindings)))
            }
            Expr::Func(f, e) => Expr::Func(*f, Box::new(e.substitute(bindings))),
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Num(x) => write!(f, "{x}"),
            Expr::Pi => write!(f, "pi"),
            Expr::Param(name) => write!(f, "{name}"),
            Expr::Neg(e) => write!(f, "-({e})"),
            Expr::Bin(op, a, b) => {
                let sym = match op {
                    BinOp::Add => "+",
                    BinOp::Sub => "-",
                    BinOp::Mul => "*",
                    BinOp::Div => "/",
                    BinOp::Pow => "^",
                };
                write!(f, "({a}{sym}{b})")
            }
            Expr::Func(func, e) => {
                let name = match func {
                    UnaryFn::Sin => "sin",
                    UnaryFn::Cos => "cos",
                    UnaryFn::Tan => "tan",
                    UnaryFn::Exp => "exp",
                    UnaryFn::Ln => "ln",
                    UnaryFn::Sqrt => "sqrt",
                };
                write!(f, "{name}({e})")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    #[test]
    fn evaluates_pi_over_two() {
        let e = Expr::Bin(BinOp::Div, Box::new(Expr::Pi), Box::new(Expr::Num(2.0)));
        assert!((e.eval_const().unwrap() - PI / 2.0).abs() < 1e-12);
    }

    #[test]
    fn evaluates_nested_arithmetic() {
        // -3 * pi / 4
        let e = Expr::Bin(
            BinOp::Div,
            Box::new(Expr::Bin(
                BinOp::Mul,
                Box::new(Expr::Neg(Box::new(Expr::Num(3.0)))),
                Box::new(Expr::Pi),
            )),
            Box::new(Expr::Num(4.0)),
        );
        assert!((e.eval_const().unwrap() + 3.0 * PI / 4.0).abs() < 1e-12);
    }

    #[test]
    fn unbound_param_is_error() {
        let e = Expr::Param("theta".into());
        assert!(e.eval_const().is_err());
    }

    #[test]
    fn bound_param_evaluates() {
        let e = Expr::Bin(BinOp::Mul, Box::new(Expr::Param("t".into())), Box::new(Expr::Num(2.0)));
        let mut env = HashMap::new();
        env.insert("t".to_string(), 1.5);
        assert_eq!(e.eval(&env).unwrap(), 3.0);
    }

    #[test]
    fn substitute_replaces_params() {
        let e = Expr::Neg(Box::new(Expr::Param("a".into())));
        let mut bind = HashMap::new();
        bind.insert("a".to_string(), Expr::Pi);
        assert_eq!(e.substitute(&bind), Expr::Neg(Box::new(Expr::Pi)));
    }

    #[test]
    fn functions_apply() {
        let e = Expr::Func(UnaryFn::Cos, Box::new(Expr::Num(0.0)));
        assert_eq!(e.eval_const().unwrap(), 1.0);
        assert_eq!(UnaryFn::from_name("sqrt"), Some(UnaryFn::Sqrt));
        assert_eq!(UnaryFn::from_name("nope"), None);
    }

    #[test]
    fn power_operator() {
        let e = Expr::Bin(BinOp::Pow, Box::new(Expr::Num(2.0)), Box::new(Expr::Num(10.0)));
        assert_eq!(e.eval_const().unwrap(), 1024.0);
    }

    #[test]
    fn display_roundtrips_shape() {
        let e = Expr::Bin(BinOp::Div, Box::new(Expr::Pi), Box::new(Expr::Num(2.0)));
        assert_eq!(e.to_string(), "(pi/2)");
    }
}
