//! Error type shared by the lexer and parser.

use std::fmt;

/// Convenience alias used throughout the crate.
pub type Result<T> = std::result::Result<T, QasmError>;

/// An error produced while lexing or parsing OpenQASM 2.0 source.
///
/// Carries a 1-based source location so failures in large benchmark files
/// are actionable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QasmError {
    /// Human-readable description of the failure.
    pub message: String,
    /// 1-based line of the offending token.
    pub line: usize,
    /// 1-based column of the offending token.
    pub col: usize,
}

impl QasmError {
    /// Create an error at an explicit source location.
    pub fn new(message: impl Into<String>, line: usize, col: usize) -> Self {
        Self { message: message.into(), line, col }
    }
}

impl fmt::Display for QasmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "QASM error at {}:{}: {}", self.line, self.col, self.message)
    }
}

impl std::error::Error for QasmError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_location_and_message() {
        let e = QasmError::new("unexpected token", 3, 14);
        let s = e.to_string();
        assert!(s.contains("3:14"));
        assert!(s.contains("unexpected token"));
    }

    #[test]
    fn error_is_std_error() {
        let e = QasmError::new("x", 1, 1);
        let _: &dyn std::error::Error = &e;
    }
}
