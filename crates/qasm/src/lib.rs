//! OpenQASM 2.0 front end for the Parallax compiler suite.
//!
//! The Parallax paper reads every benchmark as an OpenQASM 2.0 file before
//! compiling it for neutral-atom hardware. This crate provides the
//! corresponding front end: a hand-written lexer ([`lexer`]), a recursive
//! descent parser ([`parser`]) producing a typed AST ([`ast`]), constant
//! folding of angle expressions ([`expr`]), and a writer ([`writer`]) that
//! renders a program back to QASM text.
//!
//! Supported subset (everything the 18 evaluation benchmarks need):
//! `OPENQASM 2.0;`, `include` (recorded, not resolved — the standard
//! `qelib1.inc` gates are built in downstream), `qreg`/`creg` declarations,
//! gate applications with angle-expression parameters, user `gate`
//! definitions (expanded by `parallax-circuit`), `measure`, `barrier`, and
//! `reset`.
//!
//! # Example
//! ```
//! use parallax_qasm::parse;
//! let program = parse(
//!     "OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[2];\ncreg c[2];\n\
//!      h q[0];\ncx q[0],q[1];\nmeasure q -> c;\n",
//! ).unwrap();
//! assert_eq!(program.qreg_size("q"), Some(2));
//! assert_eq!(program.statements.len(), 6);
//! ```

pub mod ast;
pub mod error;
pub mod expr;
pub mod hash;
pub mod lexer;
pub mod parser;
pub mod writer;

pub use ast::{Argument, GateDef, Program, Statement};
pub use error::{QasmError, Result};
pub use expr::Expr;
pub use hash::{
    fnv1a_64, program_hash, source_hash, structural_program_hash, structural_source_hash,
};
pub use lexer::{Lexer, Token, TokenKind};
pub use parser::Parser;
pub use writer::{write_program, write_structural_program};

/// Parse OpenQASM 2.0 source text into a [`Program`].
///
/// This is the main entry point of the crate; it is equivalent to
/// constructing a [`Parser`] and calling [`Parser::parse_program`].
pub fn parse(source: &str) -> Result<Program> {
    Parser::new(source)?.parse_program()
}
