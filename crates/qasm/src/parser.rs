//! Recursive descent parser for OpenQASM 2.0.

use crate::ast::{Argument, GateBodyStmt, GateDef, Program, Statement};
use crate::error::{QasmError, Result};
use crate::expr::{BinOp, Expr, UnaryFn};
use crate::lexer::{Lexer, Token, TokenKind};

/// Recursive descent parser over a token stream.
pub struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    /// Lex `source` and prepare a parser.
    pub fn new(source: &str) -> Result<Self> {
        Ok(Self { tokens: Lexer::new(source).tokenize()?, pos: 0 })
    }

    fn peek(&self) -> &Token {
        &self.tokens[self.pos.min(self.tokens.len() - 1)]
    }

    fn bump(&mut self) -> Token {
        let t = self.tokens[self.pos.min(self.tokens.len() - 1)].clone();
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        t
    }

    fn err_here(&self, msg: impl Into<String>) -> QasmError {
        let t = self.peek();
        QasmError::new(msg, t.line, t.col)
    }

    fn expect(&mut self, kind: &TokenKind, what: &str) -> Result<Token> {
        if &self.peek().kind == kind {
            Ok(self.bump())
        } else {
            Err(self.err_here(format!("expected {what}, found {:?}", self.peek().kind)))
        }
    }

    fn expect_ident(&mut self, what: &str) -> Result<String> {
        match self.peek().kind.clone() {
            TokenKind::Ident(name) => {
                self.bump();
                Ok(name)
            }
            other => Err(self.err_here(format!("expected {what}, found {other:?}"))),
        }
    }

    fn expect_int(&mut self, what: &str) -> Result<u64> {
        match self.peek().kind.clone() {
            TokenKind::Int(v) => {
                self.bump();
                Ok(v)
            }
            other => Err(self.err_here(format!("expected {what}, found {other:?}"))),
        }
    }

    /// Parse a full program (header plus statements until EOF).
    pub fn parse_program(&mut self) -> Result<Program> {
        self.expect(&TokenKind::OpenQasm, "'OPENQASM'")?;
        let version = match self.peek().kind.clone() {
            TokenKind::Real(v) => {
                self.bump();
                format!("{v:.1}")
            }
            TokenKind::Int(v) => {
                self.bump();
                format!("{v}.0")
            }
            _ => return Err(self.err_here("expected version number after OPENQASM")),
        };
        self.expect(&TokenKind::Semicolon, "';'")?;

        let mut statements = Vec::new();
        while self.peek().kind != TokenKind::Eof {
            statements.push(self.parse_statement()?);
        }
        Ok(Program { version, statements })
    }

    fn parse_statement(&mut self) -> Result<Statement> {
        match self.peek().kind.clone() {
            TokenKind::Include => {
                self.bump();
                let file = match self.peek().kind.clone() {
                    TokenKind::Str(s) => {
                        self.bump();
                        s
                    }
                    _ => return Err(self.err_here("expected string after include")),
                };
                self.expect(&TokenKind::Semicolon, "';'")?;
                Ok(Statement::Include(file))
            }
            TokenKind::QReg => {
                self.bump();
                let (name, size) = self.parse_reg_decl()?;
                Ok(Statement::QRegDecl { name, size })
            }
            TokenKind::CReg => {
                self.bump();
                let (name, size) = self.parse_reg_decl()?;
                Ok(Statement::CRegDecl { name, size })
            }
            TokenKind::Gate => self.parse_gate_def(false),
            TokenKind::Opaque => self.parse_gate_def(true),
            TokenKind::Measure => {
                self.bump();
                let qubit = self.parse_argument()?;
                self.expect(&TokenKind::Arrow, "'->'")?;
                let target = self.parse_argument()?;
                self.expect(&TokenKind::Semicolon, "';'")?;
                Ok(Statement::Measure { qubit, target })
            }
            TokenKind::Barrier => {
                self.bump();
                let args = self.parse_argument_list()?;
                self.expect(&TokenKind::Semicolon, "';'")?;
                Ok(Statement::Barrier(args))
            }
            TokenKind::Reset => {
                self.bump();
                let arg = self.parse_argument()?;
                self.expect(&TokenKind::Semicolon, "';'")?;
                Ok(Statement::Reset(arg))
            }
            TokenKind::If => {
                self.bump();
                self.expect(&TokenKind::LParen, "'('")?;
                let creg = self.expect_ident("classical register name")?;
                self.expect(&TokenKind::EqEq, "'=='")?;
                let value = self.expect_int("integer comparison value")?;
                self.expect(&TokenKind::RParen, "')'")?;
                let then = self.parse_statement()?;
                Ok(Statement::Conditional { creg, value, then: Box::new(then) })
            }
            TokenKind::Ident(_) | TokenKind::Pi => {
                let stmt = self.parse_gate_call()?;
                Ok(stmt)
            }
            other => Err(self.err_here(format!("unexpected token {other:?} at statement start"))),
        }
    }

    fn parse_reg_decl(&mut self) -> Result<(String, usize)> {
        let name = self.expect_ident("register name")?;
        self.expect(&TokenKind::LBracket, "'['")?;
        let size = self.expect_int("register size")? as usize;
        self.expect(&TokenKind::RBracket, "']'")?;
        self.expect(&TokenKind::Semicolon, "';'")?;
        Ok((name, size))
    }

    fn parse_gate_def(&mut self, opaque: bool) -> Result<Statement> {
        self.bump(); // gate | opaque
        let name = self.expect_ident("gate name")?;
        let mut params = Vec::new();
        if self.peek().kind == TokenKind::LParen {
            self.bump();
            if self.peek().kind != TokenKind::RParen {
                loop {
                    params.push(self.expect_ident("parameter name")?);
                    if self.peek().kind == TokenKind::Comma {
                        self.bump();
                    } else {
                        break;
                    }
                }
            }
            self.expect(&TokenKind::RParen, "')'")?;
        }
        let mut qubits = Vec::new();
        loop {
            qubits.push(self.expect_ident("qubit argument name")?);
            if self.peek().kind == TokenKind::Comma {
                self.bump();
            } else {
                break;
            }
        }
        let mut body = Vec::new();
        if opaque {
            self.expect(&TokenKind::Semicolon, "';'")?;
        } else {
            self.expect(&TokenKind::LBrace, "'{'")?;
            while self.peek().kind != TokenKind::RBrace {
                if self.peek().kind == TokenKind::Barrier {
                    // barriers inside gate bodies carry no scheduling meaning
                    // for our pipeline; consume through the semicolon.
                    while self.bump().kind != TokenKind::Semicolon {}
                    continue;
                }
                body.push(self.parse_gate_body_stmt()?);
            }
            self.expect(&TokenKind::RBrace, "'}'")?;
        }
        Ok(Statement::GateDef(GateDef { name, params, qubits, body, opaque }))
    }

    fn parse_gate_body_stmt(&mut self) -> Result<GateBodyStmt> {
        let name = self.expect_ident("gate name")?;
        let mut params = Vec::new();
        if self.peek().kind == TokenKind::LParen {
            self.bump();
            if self.peek().kind != TokenKind::RParen {
                loop {
                    params.push(self.parse_expr()?);
                    if self.peek().kind == TokenKind::Comma {
                        self.bump();
                    } else {
                        break;
                    }
                }
            }
            self.expect(&TokenKind::RParen, "')'")?;
        }
        let mut qubits = Vec::new();
        loop {
            qubits.push(self.expect_ident("qubit name")?);
            if self.peek().kind == TokenKind::Comma {
                self.bump();
            } else {
                break;
            }
        }
        self.expect(&TokenKind::Semicolon, "';'")?;
        Ok(GateBodyStmt { name, params, qubits })
    }

    fn parse_gate_call(&mut self) -> Result<Statement> {
        let name = self.expect_ident("gate name")?;
        let mut params = Vec::new();
        if self.peek().kind == TokenKind::LParen {
            self.bump();
            if self.peek().kind != TokenKind::RParen {
                loop {
                    params.push(self.parse_expr()?);
                    if self.peek().kind == TokenKind::Comma {
                        self.bump();
                    } else {
                        break;
                    }
                }
            }
            self.expect(&TokenKind::RParen, "')'")?;
        }
        let args = self.parse_argument_list()?;
        self.expect(&TokenKind::Semicolon, "';'")?;
        Ok(Statement::GateCall { name, params, args })
    }

    fn parse_argument_list(&mut self) -> Result<Vec<Argument>> {
        let mut args = vec![self.parse_argument()?];
        while self.peek().kind == TokenKind::Comma {
            self.bump();
            args.push(self.parse_argument()?);
        }
        Ok(args)
    }

    fn parse_argument(&mut self) -> Result<Argument> {
        let name = self.expect_ident("register name")?;
        if self.peek().kind == TokenKind::LBracket {
            self.bump();
            let idx = self.expect_int("index")? as usize;
            self.expect(&TokenKind::RBracket, "']'")?;
            Ok(Argument::Indexed(name, idx))
        } else {
            Ok(Argument::Register(name))
        }
    }

    /// Expression grammar: term-level +/-, factor-level */÷, then unary and
    /// `^` (right-associative) at the highest precedence.
    fn parse_expr(&mut self) -> Result<Expr> {
        let mut lhs = self.parse_term()?;
        loop {
            let op = match self.peek().kind {
                TokenKind::Plus => BinOp::Add,
                TokenKind::Minus => BinOp::Sub,
                _ => break,
            };
            self.bump();
            let rhs = self.parse_term()?;
            lhs = Expr::Bin(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn parse_term(&mut self) -> Result<Expr> {
        let mut lhs = self.parse_unary()?;
        loop {
            let op = match self.peek().kind {
                TokenKind::Star => BinOp::Mul,
                TokenKind::Slash => BinOp::Div,
                _ => break,
            };
            self.bump();
            let rhs = self.parse_unary()?;
            lhs = Expr::Bin(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn parse_unary(&mut self) -> Result<Expr> {
        if self.peek().kind == TokenKind::Minus {
            self.bump();
            return Ok(Expr::Neg(Box::new(self.parse_unary()?)));
        }
        if self.peek().kind == TokenKind::Plus {
            self.bump();
            return self.parse_unary();
        }
        self.parse_power()
    }

    fn parse_power(&mut self) -> Result<Expr> {
        let base = self.parse_atom()?;
        if self.peek().kind == TokenKind::Caret {
            self.bump();
            let exp = self.parse_unary()?;
            return Ok(Expr::Bin(BinOp::Pow, Box::new(base), Box::new(exp)));
        }
        Ok(base)
    }

    fn parse_atom(&mut self) -> Result<Expr> {
        match self.peek().kind.clone() {
            TokenKind::Real(v) => {
                self.bump();
                Ok(Expr::Num(v))
            }
            TokenKind::Int(v) => {
                self.bump();
                Ok(Expr::Num(v as f64))
            }
            TokenKind::Pi => {
                self.bump();
                Ok(Expr::Pi)
            }
            TokenKind::LParen => {
                self.bump();
                let e = self.parse_expr()?;
                self.expect(&TokenKind::RParen, "')'")?;
                Ok(e)
            }
            TokenKind::Ident(name) => {
                self.bump();
                if let Some(f) = UnaryFn::from_name(&name) {
                    self.expect(&TokenKind::LParen, "'(' after function name")?;
                    let e = self.parse_expr()?;
                    self.expect(&TokenKind::RParen, "')'")?;
                    Ok(Expr::Func(f, Box::new(e)))
                } else {
                    Ok(Expr::Param(name))
                }
            }
            other => Err(self.err_here(format!("unexpected token {other:?} in expression"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;
    use std::f64::consts::PI;

    #[test]
    fn parses_minimal_program() {
        let p = parse("OPENQASM 2.0;\nqreg q[2];\ncreg c[2];\n").unwrap();
        assert_eq!(p.version, "2.0");
        assert_eq!(p.total_qubits(), 2);
    }

    #[test]
    fn parses_gate_calls_with_params() {
        let p = parse("OPENQASM 2.0;\nqreg q[1];\nu3(pi/2,0,pi) q[0];\n").unwrap();
        match &p.statements[1] {
            Statement::GateCall { name, params, args } => {
                assert_eq!(name, "u3");
                assert_eq!(params.len(), 3);
                assert!((params[0].eval_const().unwrap() - PI / 2.0).abs() < 1e-12);
                assert_eq!(args, &vec![Argument::Indexed("q".into(), 0)]);
            }
            other => panic!("expected gate call, got {other:?}"),
        }
    }

    #[test]
    fn parses_measure_both_forms() {
        let p = parse(
            "OPENQASM 2.0;\nqreg q[2];\ncreg c[2];\nmeasure q -> c;\nmeasure q[1] -> c[0];\n",
        )
        .unwrap();
        assert!(matches!(
            &p.statements[2],
            Statement::Measure { qubit: Argument::Register(_), .. }
        ));
        assert!(matches!(
            &p.statements[3],
            Statement::Measure { qubit: Argument::Indexed(_, 1), .. }
        ));
    }

    #[test]
    fn parses_gate_definition_and_records_body() {
        let src = "OPENQASM 2.0;\ngate majority a,b,c { cx c,b; cx c,a; ccx a,b,c; }\nqreg q[3];\nmajority q[0],q[1],q[2];\n";
        let p = parse(src).unwrap();
        let defs = p.gate_defs();
        let def = &defs["majority"];
        assert_eq!(def.qubits, vec!["a", "b", "c"]);
        assert_eq!(def.body.len(), 3);
        assert_eq!(def.body[2].name, "ccx");
    }

    #[test]
    fn parses_parameterized_gate_definition() {
        let src = "OPENQASM 2.0;\ngate rzz(theta) a,b { cx a,b; rz(theta) b; cx a,b; }\n";
        let p = parse(src).unwrap();
        let defs = p.gate_defs();
        assert_eq!(defs["rzz"].params, vec!["theta"]);
        assert!(matches!(defs["rzz"].body[1].params[0], Expr::Param(_)));
    }

    #[test]
    fn parses_barrier_and_reset() {
        let p = parse("OPENQASM 2.0;\nqreg q[2];\nbarrier q[0],q[1];\nreset q[0];\n").unwrap();
        assert!(matches!(&p.statements[1], Statement::Barrier(args) if args.len() == 2));
        assert!(matches!(&p.statements[2], Statement::Reset(_)));
    }

    #[test]
    fn parses_conditional() {
        let p = parse("OPENQASM 2.0;\nqreg q[1];\ncreg c[1];\nif (c == 1) x q[0];\n").unwrap();
        match &p.statements[2] {
            Statement::Conditional { creg, value, then } => {
                assert_eq!(creg, "c");
                assert_eq!(*value, 1);
                assert!(matches!(**then, Statement::GateCall { .. }));
            }
            other => panic!("expected conditional, got {other:?}"),
        }
    }

    #[test]
    fn parses_opaque_declaration() {
        let p = parse("OPENQASM 2.0;\nopaque magic(alpha) a,b;\n").unwrap();
        let defs = p.gate_defs();
        assert!(defs["magic"].opaque);
        assert!(defs["magic"].body.is_empty());
    }

    #[test]
    fn expression_precedence() {
        let p = parse("OPENQASM 2.0;\nqreg q[1];\nrz(1+2*3) q[0];\n").unwrap();
        match &p.statements[1] {
            Statement::GateCall { params, .. } => {
                assert_eq!(params[0].eval_const().unwrap(), 7.0);
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn unary_minus_binds_tighter_than_sub() {
        let p = parse("OPENQASM 2.0;\nqreg q[1];\nrz(-pi/2) q[0];\n").unwrap();
        match &p.statements[1] {
            Statement::GateCall { params, .. } => {
                assert!((params[0].eval_const().unwrap() + PI / 2.0).abs() < 1e-12);
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn missing_semicolon_is_error() {
        assert!(parse("OPENQASM 2.0;\nqreg q[2]\n").is_err());
    }

    #[test]
    fn garbage_statement_is_error() {
        assert!(parse("OPENQASM 2.0;\n[;\n").is_err());
    }

    #[test]
    fn function_calls_in_params() {
        let p = parse("OPENQASM 2.0;\nqreg q[1];\nrz(cos(0)+sqrt(4)) q[0];\n").unwrap();
        match &p.statements[1] {
            Statement::GateCall { params, .. } => {
                assert_eq!(params[0].eval_const().unwrap(), 3.0);
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn barrier_inside_gate_body_is_ignored() {
        let src = "OPENQASM 2.0;\ngate g a,b { cx a,b; barrier a,b; cx a,b; }\n";
        let p = parse(src).unwrap();
        assert_eq!(p.gate_defs()["g"].body.len(), 2);
    }
}
