//! Stable content hashing of OpenQASM programs.
//!
//! The compile service caches results by circuit content, so two
//! submissions of the *same program* — differing only in whitespace,
//! comments, or numeric formatting quirks the parser normalizes away —
//! must map to the same key, and the key must be stable across processes
//! and platforms (no `std::collections` `RandomState`). The entry points
//! here hash the canonical [`write_program`](crate::write_program)
//! rendering of the parsed AST with FNV-1a, which satisfies both.

use crate::ast::Program;
use crate::Result;

/// FNV-1a 64-bit offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64-bit prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Hash raw bytes with 64-bit FNV-1a. Deterministic across processes,
/// platforms, and compiler versions — unlike `DefaultHasher`, which is
/// seeded per process.
pub fn fnv1a_64(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Stable content hash of a parsed [`Program`]: the FNV-1a hash of its
/// canonical text rendering, so semantically identical ASTs collide.
pub fn program_hash(program: &Program) -> u64 {
    fnv1a_64(crate::write_program(program).as_bytes())
}

/// Parse `source` and return its [`program_hash`]. Whitespace- and
/// comment-insensitive: any two sources that parse to the same AST hash
/// identically. Errors if `source` is not valid OpenQASM 2.0.
pub fn source_hash(source: &str) -> Result<u64> {
    Ok(program_hash(&crate::parse(source)?))
}

/// Structural content hash of a parsed [`Program`]: like [`program_hash`]
/// but over the rendering of
/// [`write_structural_program`](crate::writer::write_structural_program),
/// where every gate-call parameter is canonicalized to its ordinal slot
/// (`$0`, `$1`, ...). Two programs that differ only in rotation angles —
/// the shape of variational parameter sweeps — collide here while their
/// exact [`program_hash`]es differ.
pub fn structural_program_hash(program: &Program) -> u64 {
    fnv1a_64(crate::writer::write_structural_program(program).as_bytes())
}

/// Parse `source` and return its [`structural_program_hash`]. Errors if
/// `source` is not valid OpenQASM 2.0.
pub fn structural_source_hash(source: &str) -> Result<u64> {
    Ok(structural_program_hash(&crate::parse(source)?))
}

#[cfg(test)]
mod tests {
    use super::*;

    const BELL: &str = "OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[2];\ncreg c[2];\n\
                        h q[0];\ncx q[0],q[1];\nmeasure q -> c;\n";

    #[test]
    fn fnv_matches_reference_vectors() {
        // Published FNV-1a test vectors.
        assert_eq!(fnv1a_64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a_64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a_64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn whitespace_and_comments_do_not_change_the_hash() {
        let noisy = "OPENQASM 2.0;  // header\ninclude \"qelib1.inc\";\n\n\nqreg q[2];\n\
                     creg c[2];\n  h   q[0] ;\ncx q[0] , q[1];\nmeasure q->c;\n";
        assert_eq!(source_hash(BELL).unwrap(), source_hash(noisy).unwrap());
    }

    #[test]
    fn different_programs_hash_differently() {
        let other = BELL.replace("h q[0]", "x q[0]");
        assert_ne!(source_hash(BELL).unwrap(), source_hash(&other).unwrap());
    }

    #[test]
    fn hash_is_stable_across_calls() {
        assert_eq!(source_hash(BELL).unwrap(), source_hash(BELL).unwrap());
    }

    #[test]
    fn invalid_source_errors() {
        assert!(source_hash("OPENQASM 2.0; qreg q[").is_err());
        assert!(structural_source_hash("OPENQASM 2.0; qreg q[").is_err());
    }

    const PARAM: &str = "OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[2];\ncreg c[2];\n\
                         u3(0.25,0.5,0.75) q[0];\ncx q[0],q[1];\nmeasure q -> c;\n";

    #[test]
    fn structural_hash_ignores_angles_but_not_structure() {
        let other_angles = PARAM.replace("0.25,0.5,0.75", "1.5,2.5,-3.5");
        assert_ne!(source_hash(PARAM).unwrap(), source_hash(&other_angles).unwrap());
        assert_eq!(
            structural_source_hash(PARAM).unwrap(),
            structural_source_hash(&other_angles).unwrap()
        );
        // Structure changes (gate order, operands, arity) still miss.
        let other_qubit = PARAM.replace("u3(0.25,0.5,0.75) q[0]", "u3(0.25,0.5,0.75) q[1]");
        assert_ne!(
            structural_source_hash(PARAM).unwrap(),
            structural_source_hash(&other_qubit).unwrap()
        );
        let fewer_gates = PARAM.replace("cx q[0],q[1];\n", "");
        assert_ne!(
            structural_source_hash(PARAM).unwrap(),
            structural_source_hash(&fewer_gates).unwrap()
        );
    }

    #[test]
    fn structural_hash_is_whitespace_insensitive_like_the_exact_hash() {
        let noisy = PARAM.replace("u3(0.25,0.5,0.75) q[0];", "u3( 0.25 , 0.5 , 0.75 )  q[0] ;");
        assert_eq!(structural_source_hash(PARAM).unwrap(), structural_source_hash(&noisy).unwrap());
    }
}
