//! QASM front-end tier tests: parse→write→parse round-trips on
//! benchmark-style programs and error paths for malformed input.

use parallax_qasm::{parse, write_program, QasmError, Statement};

/// Round-trip helper: parse, render, re-parse, and require identical ASTs.
fn roundtrip(src: &str) -> parallax_qasm::Program {
    let p1 = parse(src).unwrap_or_else(|e| panic!("first parse failed: {e}\n{src}"));
    let rendered = write_program(&p1);
    let p2 = parse(&rendered).unwrap_or_else(|e| panic!("reparse failed: {e}\n{rendered}"));
    assert_eq!(p1, p2, "AST changed across write/parse:\n{rendered}");
    p1
}

#[test]
fn roundtrip_bell_pair_program() {
    let p = roundtrip(
        "OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[2];\ncreg c[2];\n\
         h q[0];\ncx q[0],q[1];\nmeasure q -> c;\n",
    );
    assert_eq!(p.qreg_size("q"), Some(2));
    assert_eq!(p.creg_size("c"), Some(2));
    assert_eq!(p.total_qubits(), 2);
}

#[test]
fn roundtrip_multi_register_program() {
    let p = roundtrip(
        "OPENQASM 2.0;\nqreg a[3];\nqreg b[2];\ncreg m[5];\n\
         h a[0];\ncx a[0],b[1];\nbarrier a[0],b[0];\nreset b[1];\nmeasure a -> m;\n",
    );
    assert_eq!(p.total_qubits(), 5);
    let offsets = p.qubit_offsets();
    assert_eq!(offsets["a"], 0);
    assert_eq!(offsets["b"], 3);
}

#[test]
fn roundtrip_parameterized_gates() {
    let p = roundtrip(
        "OPENQASM 2.0;\nqreg q[2];\n\
         u3(1.5707963267948966,0.0,3.141592653589793) q[0];\n\
         rz(0.25) q[1];\ncu1(0.125) q[0],q[1];\n",
    );
    // Numeric parameters survive rendering exactly.
    let Statement::GateCall { params, .. } = &p.statements[1] else {
        panic!("expected gate call");
    };
    assert!((params[0].eval_const().unwrap() - std::f64::consts::FRAC_PI_2).abs() < 1e-15);
}

#[test]
fn roundtrip_user_gate_definition() {
    let p = roundtrip(
        "OPENQASM 2.0;\nqreg q[3];\n\
         gate majority a,b,c { cx c,b; cx c,a; ccx a,b,c; }\n\
         majority q[0],q[1],q[2];\n",
    );
    let defs = p.gate_defs();
    assert_eq!(defs["majority"].qubits, vec!["a", "b", "c"]);
    assert_eq!(defs["majority"].body.len(), 3);
}

#[test]
fn roundtrip_conditional_and_opaque() {
    let p = roundtrip(
        "OPENQASM 2.0;\nqreg q[1];\ncreg c[1];\nopaque magic(alpha) a;\n\
         if (c == 1) x q[0];\n",
    );
    assert!(p.statements.iter().any(|s| matches!(s, Statement::Conditional { value: 1, .. })));
}

#[test]
fn rendered_text_is_a_fixpoint() {
    // write(parse(write(parse(src)))) == write(parse(src)): rendering is
    // stable after one normalization pass.
    let src = "OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[4];\ncreg c[4];\n\
               h q[0];\ncx q[0],q[1];\nccx q[0],q[1],q[2];\nu3(0.5,0.25,0.125) q[3];\n\
               measure q -> c;\n";
    let once = write_program(&parse(src).unwrap());
    let twice = write_program(&parse(&once).unwrap());
    assert_eq!(once, twice);
}

#[test]
fn error_missing_header() {
    let err = parse("qreg q[2];\n").unwrap_err();
    assert!(err.message.contains("OPENQASM"), "{err}");
    assert_eq!(err.line, 1);
}

#[test]
fn error_missing_semicolon_reports_location() {
    let err = parse("OPENQASM 2.0;\nqreg q[2]\nh q[0];\n").unwrap_err();
    // The parser notices on the token after the unterminated declaration.
    assert!(err.line >= 2, "line {} in {err}", err.line);
}

#[test]
fn error_single_equals_in_condition() {
    let err = parse("OPENQASM 2.0;\nqreg q[1];\ncreg c[1];\nif (c = 1) x q[0];\n").unwrap_err();
    assert!(err.message.contains("'=='"), "{err}");
    assert_eq!(err.line, 4);
}

#[test]
fn error_unterminated_string() {
    let err = parse("OPENQASM 2.0;\ninclude \"qelib1.inc\n").unwrap_err();
    assert!(err.message.contains("unterminated string"), "{err}");
    assert_eq!(err.line, 2);
}

#[test]
fn error_invalid_character() {
    let err = parse("OPENQASM 2.0;\nqreg q[1];\n@ q[0];\n").unwrap_err();
    assert_eq!(err.line, 3);
    assert_eq!(err.col, 1);
}

#[test]
fn error_missing_version_number() {
    let err = parse("OPENQASM;\n").unwrap_err();
    assert!(err.message.contains("version"), "{err}");
}

#[test]
fn error_values_are_ordinary_std_errors() {
    let err: QasmError = parse("").unwrap_err();
    let display = err.to_string();
    assert!(display.contains(&format!("{}:{}", err.line, err.col)), "{display}");
    let _: Box<dyn std::error::Error> = Box::new(err);
}
