//! Greedy SWAP routing over a static atom layout.
//!
//! Both baselines (ELDI and the GRAPHINE router) keep atoms stationary and
//! bring distant CZ operands together by exchanging qubit *states* through
//! chains of SWAP gates (three CZs each, ~1.43% error — the cost Parallax
//! eliminates). The router processes gates in program order, maintains the
//! logical-to-physical mapping, and inserts SWAPs along BFS shortest paths
//! in the interaction graph (atoms within the Rydberg radius are adjacent).

use parallax_circuit::{Circuit, Gate};
use parallax_hardware::Point;
use std::collections::VecDeque;

/// Result of routing: the rewritten circuit plus mapping bookkeeping.
#[derive(Debug, Clone)]
pub struct RoutedCircuit {
    /// Rewritten circuit; every SWAP is already lowered to three CZ gates.
    pub circuit: Circuit,
    /// Number of SWAPs inserted.
    pub swap_count: usize,
    /// `mapping[logical] = physical` after the final gate.
    pub final_mapping: Vec<u32>,
}

/// Route `circuit` over static `positions` with interaction radius `r_um`.
///
/// # Panics
/// Panics if the interaction graph over `positions` is disconnected (the
/// radius-selection stage guarantees connectivity).
pub fn route(circuit: &Circuit, positions: &[Point], r_um: f64) -> RoutedCircuit {
    let n = circuit.num_qubits();
    assert_eq!(positions.len(), n);
    // Adjacency by radius.
    let adj: Vec<Vec<u32>> = (0..n)
        .map(|i| {
            (0..n)
                .filter(|&j| j != i && positions[i].distance(&positions[j]) <= r_um + 1e-9)
                .map(|j| j as u32)
                .collect()
        })
        .collect();

    // mapping: logical -> physical; inverse: physical -> logical.
    let mut phys_of: Vec<u32> = (0..n as u32).collect();
    let mut logical_at: Vec<u32> = (0..n as u32).collect();
    let mut out = Circuit::new(n);
    let mut swap_count = 0usize;

    let adjacent = |a: u32, b: u32| -> bool {
        positions[a as usize].distance(&positions[b as usize]) <= r_um + 1e-9
    };

    for g in circuit.gates() {
        match *g {
            Gate::U3 { q, theta, phi, lam } => {
                out.push(Gate::u3(phys_of[q as usize], theta, phi, lam));
            }
            Gate::Cz { a, b } => {
                let (mut pa, pb) = (phys_of[a as usize], phys_of[b as usize]);
                if !adjacent(pa, pb) {
                    let path = bfs_path(&adj, pa, pb).expect("interaction graph must be connected");
                    // Swap the state of `a` along the path until adjacent.
                    let mut idx = 0usize;
                    while !adjacent(pa, pb) {
                        idx += 1;
                        let next = path[idx];
                        if next == pb {
                            // One hop short: swap into the predecessor is
                            // enough since path[idx-1] is adjacent to pb.
                            break;
                        }
                        emit_swap(&mut out, pa, next);
                        swap_count += 1;
                        // Exchange logical occupants of pa and next.
                        let la = logical_at[pa as usize];
                        let ln = logical_at[next as usize];
                        logical_at[pa as usize] = ln;
                        logical_at[next as usize] = la;
                        phys_of[la as usize] = next;
                        phys_of[ln as usize] = pa;
                        pa = next;
                    }
                }
                out.push(Gate::cz(pa, pb));
            }
        }
    }
    RoutedCircuit { circuit: out, swap_count, final_mapping: phys_of }
}

/// Lower one SWAP into three CZ gates with basis-change U3s (the exact
/// `cx;cx;cx` identity in the CZ basis).
fn emit_swap(out: &mut Circuit, a: u32, b: u32) {
    // swap = cx(a,b) cx(b,a) cx(a,b); cx(x,y) = h(y) cz(x,y) h(y).
    out.push(Gate::h(b));
    out.push(Gate::cz(a, b));
    out.push(Gate::h(b));
    out.push(Gate::h(a));
    out.push(Gate::cz(b, a));
    out.push(Gate::h(a));
    out.push(Gate::h(b));
    out.push(Gate::cz(a, b));
    out.push(Gate::h(b));
}

/// BFS shortest path from `from` to `to` in `adj`; includes both endpoints.
fn bfs_path(adj: &[Vec<u32>], from: u32, to: u32) -> Option<Vec<u32>> {
    if from == to {
        return Some(vec![from]);
    }
    let mut prev: Vec<Option<u32>> = vec![None; adj.len()];
    let mut queue = VecDeque::new();
    queue.push_back(from);
    prev[from as usize] = Some(from);
    while let Some(v) = queue.pop_front() {
        for &w in &adj[v as usize] {
            if prev[w as usize].is_none() {
                prev[w as usize] = Some(v);
                if w == to {
                    let mut path = vec![to];
                    let mut cur = to;
                    while cur != from {
                        cur = prev[cur as usize].unwrap();
                        path.push(cur);
                    }
                    path.reverse();
                    return Some(path);
                }
                queue.push_back(w);
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use parallax_circuit::CircuitBuilder;

    /// A line of atoms spaced exactly one radius apart.
    fn line_positions(n: usize, spacing: f64) -> Vec<Point> {
        (0..n).map(|i| Point::new(i as f64 * spacing, 0.0)).collect()
    }

    #[test]
    fn adjacent_gate_needs_no_swaps() {
        let mut b = CircuitBuilder::new(3);
        b.cz(0, 1);
        let r = route(&b.build(), &line_positions(3, 7.0), 7.0);
        assert_eq!(r.swap_count, 0);
        assert_eq!(r.circuit.cz_count(), 1);
        assert_eq!(r.final_mapping, vec![0, 1, 2]);
    }

    #[test]
    fn distant_gate_inserts_swaps() {
        // 0 and 3 are three hops apart: state must travel two hops.
        let mut b = CircuitBuilder::new(4);
        b.cz(0, 3);
        let r = route(&b.build(), &line_positions(4, 7.0), 7.0);
        assert_eq!(r.swap_count, 2);
        // 1 original CZ + 3 per swap.
        assert_eq!(r.circuit.cz_count(), 1 + 3 * 2);
        // Logical 0's state now sits at physical 2.
        assert_eq!(r.final_mapping[0], 2);
    }

    #[test]
    fn larger_radius_reduces_swaps() {
        let mut b = CircuitBuilder::new(4);
        b.cz(0, 3);
        let c = b.build();
        let near = route(&c, &line_positions(4, 7.0), 7.0);
        let far = route(&c, &line_positions(4, 7.0), 14.0);
        assert!(far.swap_count < near.swap_count);
        let very_far = route(&c, &line_positions(4, 7.0), 21.0);
        assert_eq!(very_far.swap_count, 0);
    }

    #[test]
    fn mapping_tracks_multiple_swaps() {
        let mut b = CircuitBuilder::new(4);
        b.cz(0, 3).cz(0, 3);
        let r = route(&b.build(), &line_positions(4, 7.0), 7.0);
        // Second CZ is free: logical 0 already lives next to physical 3.
        assert_eq!(r.swap_count, 2);
        assert_eq!(r.circuit.cz_count(), 2 + 6);
    }

    #[test]
    fn u3_gates_follow_their_logical_qubit() {
        let mut b = CircuitBuilder::new(3);
        b.cz(0, 2).rz(0.5, 0);
        let r = route(&b.build(), &line_positions(3, 7.0), 7.0);
        // Logical 0 moved to physical 1; its rz must target physical 1.
        let last = *r.circuit.gates().last().unwrap();
        match last {
            Gate::U3 { q, lam, .. } => {
                assert_eq!(q, r.final_mapping[0]);
                assert!((lam - 0.5).abs() < 1e-12);
            }
            other => panic!("expected U3, got {other:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "connected")]
    fn disconnected_graph_panics() {
        let mut b = CircuitBuilder::new(2);
        b.cz(0, 1);
        let positions = vec![Point::new(0.0, 0.0), Point::new(1000.0, 0.0)];
        let _ = route(&b.build(), &positions, 7.0);
    }

    #[test]
    fn swap_lowering_is_nine_gates() {
        let mut c = Circuit::new(2);
        emit_swap(&mut c, 0, 1);
        assert_eq!(c.len(), 9);
        assert_eq!(c.cz_count(), 3);
    }

    #[test]
    fn bfs_finds_shortest() {
        let adj = vec![vec![1], vec![0, 2], vec![1, 3], vec![2]];
        let p = bfs_path(&adj, 0, 3).unwrap();
        assert_eq!(p, vec![0, 1, 2, 3]);
        assert_eq!(bfs_path(&adj, 2, 2).unwrap(), vec![2]);
    }
}
