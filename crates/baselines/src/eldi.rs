//! ELDI baseline (Baker et al., ISCA 2021; extended by Litteken et al.).
//!
//! ELDI maps qubits onto a square grid of static atoms and routes
//! out-of-range CZ gates with SWAP chains, exploiting long-distance Rydberg
//! interactions (its interaction radius spans multiple grid sites). As in
//! the paper, we hardware-adjust it: the grid uses the machine's
//! discretization pitch and the 2.5x blockade radius serializes layers.

use crate::common::{serialize_layers, BaselineResult};
use crate::swap_route::route;
use parallax_circuit::Circuit;
use parallax_graphine::InteractionGraph;
use parallax_hardware::{MachineSpec, Point};

/// ELDI configuration.
#[derive(Debug, Clone)]
pub struct EldiConfig {
    /// Interaction radius in units of grid pitch (long-distance
    /// interactions reach beyond nearest neighbours; default 2 sites).
    pub radius_sites: f64,
}

impl Default for EldiConfig {
    fn default() -> Self {
        Self { radius_sites: 2.0 }
    }
}

/// Compile `circuit` with the ELDI baseline on `machine`.
pub fn compile_eldi(
    circuit: &Circuit,
    machine: &MachineSpec,
    config: &EldiConfig,
) -> BaselineResult {
    let positions = grid_placement(circuit, machine);
    let r_um = config.radius_sites * machine.site_pitch_um();
    let routed = route(circuit, &positions, r_um);
    let layers = serialize_layers(&routed.circuit, &positions, r_um, machine.blockade_factor);
    BaselineResult {
        name: "eldi",
        routed: routed.circuit,
        swap_count: routed.swap_count,
        positions,
        interaction_radius_um: r_um,
        final_mapping: routed.final_mapping,
        layers,
    }
}

/// Greedy compact grid placement: qubits are placed (busiest first) on the
/// free site minimizing the weighted distance to already-placed partners;
/// the first qubit sits at the grid centre.
pub fn grid_placement(circuit: &Circuit, machine: &MachineSpec) -> Vec<Point> {
    let n = circuit.num_qubits();
    assert!(n <= machine.num_sites(), "circuit does not fit on {}", machine.name);
    let dim = machine.grid_dim;
    let pitch = machine.site_pitch_um();
    // CSR adjacency: neighbor/weight lanes for the greedy attachment
    // order and precomputed degrees, replacing a per-qubit Vec<Vec<_>>.
    let graph = InteractionGraph::from_circuit(circuit);
    let adj = graph.csr();

    // Site spiral: all sites sorted by distance from the grid centre.
    let centre = ((dim as f64 - 1.0) / 2.0, (dim as f64 - 1.0) / 2.0);
    let mut spiral: Vec<(u16, u16)> =
        (0..dim as u16).flat_map(|x| (0..dim as u16).map(move |y| (x, y))).collect();
    spiral.sort_by(|&a, &b| {
        let da = (a.0 as f64 - centre.0).powi(2) + (a.1 as f64 - centre.1).powi(2);
        let db = (b.0 as f64 - centre.0).powi(2) + (b.1 as f64 - centre.1).powi(2);
        da.partial_cmp(&db).unwrap().then(a.cmp(&b))
    });

    let mut occupied = vec![false; dim * dim];
    let mut positions: Vec<Option<Point>> = vec![None; n];
    let site_pos = |s: (u16, u16)| Point::new(s.0 as f64 * pitch, s.1 as f64 * pitch);
    let site_idx = |s: (u16, u16)| s.1 as usize * dim + s.0 as usize;

    // Placement order: highest connectivity to the already-placed set,
    // seeded by the globally busiest qubit.
    let mut placed = vec![false; n];
    let mut order = Vec::with_capacity(n);
    for _ in 0..n {
        let mut best = usize::MAX;
        let mut best_key = (-1.0f64, -1.0f64);
        for q in 0..n {
            if placed[q] {
                continue;
            }
            let attach: f64 = adj
                .neighbors(q)
                .iter()
                .zip(adj.weights(q))
                .filter(|&(&p, _)| placed[p as usize])
                .map(|(_, &w)| w)
                .sum();
            let key = (attach, adj.degree(q));
            if best == usize::MAX || key > best_key {
                best = q;
                best_key = key;
            }
        }
        placed[best] = true;
        order.push(best);
    }

    for q in order {
        // Choose the free site minimizing weighted distance to placed
        // partners; with no placed partner, the innermost free spiral site.
        let mut best_site = None;
        let mut best_cost = f64::INFINITY;
        let partners: Vec<(usize, f64)> = adj
            .neighbors(q)
            .iter()
            .zip(adj.weights(q))
            .filter(|&(&p, _)| positions[p as usize].is_some())
            .map(|(&p, &w)| (p as usize, w))
            .collect();
        for &s in &spiral {
            if occupied[site_idx(s)] {
                continue;
            }
            let pos = site_pos(s);
            let cost = if partners.is_empty() {
                // Spiral order is already centre-out; first free wins.
                0.0
            } else {
                partners.iter().map(|&(p, w)| w * pos.distance(&positions[p].unwrap())).sum()
            };
            if cost < best_cost {
                best_cost = cost;
                best_site = Some(s);
            }
            if partners.is_empty() {
                break;
            }
        }
        let s = best_site.expect("grid has free sites");
        occupied[site_idx(s)] = true;
        positions[q] = Some(site_pos(s));
    }
    positions.into_iter().map(|p| p.unwrap()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use parallax_circuit::CircuitBuilder;

    fn chain(n: usize) -> Circuit {
        let mut b = CircuitBuilder::new(n);
        b.h(0);
        for i in 0..(n as u32 - 1) {
            b.cx(i, i + 1);
        }
        b.build()
    }

    #[test]
    fn placement_is_compact() {
        let machine = MachineSpec::quera_aquila_256();
        let pos = grid_placement(&chain(9), &machine);
        assert_eq!(pos.len(), 9);
        // All 9 atoms within a few pitches of each other.
        for i in 0..9 {
            for j in (i + 1)..9 {
                assert!(pos[i].distance(&pos[j]) <= 6.0 * machine.site_pitch_um());
            }
        }
        // No two share a site.
        for i in 0..9 {
            for j in (i + 1)..9 {
                assert!(pos[i].distance(&pos[j]) >= machine.site_pitch_um() - 1e-9);
            }
        }
    }

    #[test]
    fn chain_on_grid_needs_few_swaps() {
        let machine = MachineSpec::quera_aquila_256();
        let r = compile_eldi(&chain(6), &machine, &EldiConfig::default());
        // A linear chain placed compactly is mostly nearest-neighbour.
        assert!(r.swap_count <= 2, "swaps {}", r.swap_count);
        assert_eq!(r.cz_count(), chain(6).cz_count() + 3 * r.swap_count);
    }

    #[test]
    fn all_to_all_circuit_pays_swaps() {
        let machine = MachineSpec::quera_aquila_256();
        let mut b = CircuitBuilder::new(12);
        for i in 0..12u32 {
            for j in (i + 1)..12 {
                b.cz(i, j);
            }
        }
        let c = b.build();
        let r = compile_eldi(&c, &machine, &EldiConfig::default());
        assert!(r.swap_count > 0);
        assert_eq!(r.cz_count(), c.cz_count() + 3 * r.swap_count);
    }

    #[test]
    fn layers_cover_all_gates() {
        let machine = MachineSpec::quera_aquila_256();
        let r = compile_eldi(&chain(5), &machine, &EldiConfig::default());
        let total: usize = r.layers.iter().map(|l| l.len()).sum();
        assert_eq!(total, r.routed.len());
    }

    #[test]
    fn radius_scales_with_config() {
        let machine = MachineSpec::quera_aquila_256();
        let near = compile_eldi(&chain(10), &machine, &EldiConfig { radius_sites: 1.0 });
        let far = compile_eldi(&chain(10), &machine, &EldiConfig { radius_sites: 4.0 });
        assert!(far.swap_count <= near.swap_count);
    }
}
