//! Shared types for the baseline compilers.

use parallax_circuit::Circuit;
use parallax_hardware::{within_blockade, Point};

/// Output of a baseline (SWAP-routing) compiler.
#[derive(Debug, Clone)]
pub struct BaselineResult {
    /// Compiler name ("eldi" / "graphine").
    pub name: &'static str,
    /// The routed circuit in the {U3, CZ} basis, SWAPs already lowered to
    /// three CZ gates each.
    pub routed: Circuit,
    /// Number of SWAP gates the router inserted.
    pub swap_count: usize,
    /// Static atom positions, µm (atoms never move in these baselines).
    pub positions: Vec<Point>,
    /// Rydberg interaction radius, µm.
    pub interaction_radius_um: f64,
    /// Final logical-to-physical mapping: `mapping[logical] = physical`.
    pub final_mapping: Vec<u32>,
    /// Hardware-serialized execution layers (indices into `routed`),
    /// respecting the Rydberg blockade constraint.
    pub layers: Vec<Vec<usize>>,
}

impl BaselineResult {
    /// Total CZ gates executed (original + 3 per SWAP) — the Fig. 9 metric.
    pub fn cz_count(&self) -> usize {
        self.routed.cz_count()
    }

    /// Total U3 gates.
    pub fn u3_count(&self) -> usize {
        self.routed.u3_count()
    }

    /// Number of serialized layers.
    pub fn layer_count(&self) -> usize {
        self.layers.len()
    }
}

/// Split ASAP layers so no two CZ gates within a layer blockade each other
/// (the hardware adjustment the paper applied to both baselines).
///
/// Returns layers of gate indices into `circuit`.
pub fn serialize_layers(
    circuit: &Circuit,
    positions: &[Point],
    r_um: f64,
    blockade_factor: f64,
) -> Vec<Vec<usize>> {
    let gates = circuit.gates();
    let mut out: Vec<Vec<usize>> = Vec::new();
    for layer in parallax_circuit::layers(circuit) {
        // Greedy first-fit into conflict-free sublayers.
        let mut sublayers: Vec<Vec<usize>> = Vec::new();
        for &g in &layer {
            let qubits = gates[g].qubits();
            let is_cz = gates[g].is_two_qubit();
            let mut placed = false;
            for sub in sublayers.iter_mut() {
                let conflict = is_cz
                    && sub.iter().any(|&other| {
                        if !gates[other].is_two_qubit() {
                            return false;
                        }
                        qubits.as_slice().iter().any(|&p| {
                            gates[other].qubits().as_slice().iter().any(|&q| {
                                within_blockade(
                                    &positions[p as usize],
                                    &positions[q as usize],
                                    r_um,
                                    blockade_factor,
                                )
                            })
                        })
                    });
                if !conflict {
                    sub.push(g);
                    placed = true;
                    break;
                }
            }
            if !placed {
                sublayers.push(vec![g]);
            }
        }
        out.extend(sublayers);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use parallax_circuit::CircuitBuilder;

    #[test]
    fn serialize_splits_blockading_gates() {
        // Four atoms in a tight cluster: the two parallel CZs must serialize.
        let mut b = CircuitBuilder::new(4);
        b.cz(0, 1).cz(2, 3);
        let c = b.build();
        let positions = vec![
            Point::new(0.0, 0.0),
            Point::new(7.0, 0.0),
            Point::new(0.0, 7.0),
            Point::new(7.0, 7.0),
        ];
        let layers = serialize_layers(&c, &positions, 7.0, 2.5);
        assert_eq!(layers.len(), 2);
    }

    #[test]
    fn distant_gates_stay_parallel() {
        let mut b = CircuitBuilder::new(4);
        b.cz(0, 1).cz(2, 3);
        let c = b.build();
        let positions = vec![
            Point::new(0.0, 0.0),
            Point::new(7.0, 0.0),
            Point::new(100.0, 100.0),
            Point::new(107.0, 100.0),
        ];
        let layers = serialize_layers(&c, &positions, 7.0, 2.5);
        assert_eq!(layers.len(), 1);
        assert_eq!(layers[0].len(), 2);
    }

    #[test]
    fn u3_gates_never_serialize() {
        let mut b = CircuitBuilder::new(3);
        b.h(0).h(1).h(2);
        let c = b.build();
        let positions = vec![Point::new(0.0, 0.0), Point::new(1.0, 0.0), Point::new(2.0, 0.0)];
        let layers = serialize_layers(&c, &positions, 7.0, 2.5);
        assert_eq!(layers.len(), 1);
    }

    #[test]
    fn every_gate_appears_once() {
        let mut b = CircuitBuilder::new(4);
        b.h(0).cz(0, 1).cz(2, 3).h(2).cz(1, 2);
        let c = b.build();
        let positions = vec![
            Point::new(0.0, 0.0),
            Point::new(7.0, 0.0),
            Point::new(14.0, 0.0),
            Point::new(21.0, 0.0),
        ];
        let layers = serialize_layers(&c, &positions, 7.0, 2.5);
        let mut seen = vec![false; c.len()];
        for l in &layers {
            for &g in l {
                assert!(!seen[g]);
                seen[g] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
    }
}
