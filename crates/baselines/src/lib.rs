//! Baseline neutral-atom compilers for the Parallax evaluation.
//!
//! The paper compares Parallax against two state-of-the-art techniques,
//! both re-implemented here and hardware-adjusted exactly as the paper
//! describes (discretized grid pitch, 2.5x blockade serialization):
//!
//! * **ELDI** ([`eldi`]): square-grid mapping with long-distance Rydberg
//!   interactions and SWAP routing (Baker et al. ISCA'21 / Litteken et al.
//!   QCE'22).
//! * **GRAPHINE** ([`graphine_router`]): application-specific annealed
//!   static layout, no atom movement, SWAP routing (Patel et al. SC'23).
//!
//! Both keep atoms stationary, so every out-of-range CZ costs SWAPs (three
//! CZs each) — the error source Parallax eliminates.
//!
//! # Example
//! ```
//! use parallax_circuit::CircuitBuilder;
//! use parallax_baselines::{compile_eldi, EldiConfig};
//! use parallax_hardware::MachineSpec;
//!
//! let mut b = CircuitBuilder::new(4);
//! b.h(0).cx(0, 3).cx(1, 2);
//! let result = compile_eldi(&b.build(), &MachineSpec::quera_aquila_256(), &EldiConfig::default());
//! assert_eq!(result.cz_count(), result.routed.cz_count());
//! ```

pub mod common;
pub mod eldi;
pub mod graphine_router;
pub mod swap_route;

pub use common::{serialize_layers, BaselineResult};
pub use eldi::{compile_eldi, grid_placement, EldiConfig};
pub use graphine_router::{compile_graphine, compile_graphine_with_layout};
pub use swap_route::{route, RoutedCircuit};
