//! GRAPHINE baseline (Patel et al., SC 2023), hardware-adjusted.
//!
//! GRAPHINE generates an application-specific static layout (the same
//! annealed placement Parallax starts from, discretized to the machine
//! grid per the paper's comparability adjustments) but supports no atom
//! movement: out-of-range CZ gates are SWAP-routed exactly like ELDI, just
//! over the custom topology with the annealer's connected interaction
//! radius.

use crate::common::{serialize_layers, BaselineResult};
use crate::swap_route::route;
use parallax_circuit::Circuit;
use parallax_core::discretize;
use parallax_graphine::{GraphineLayout, PlacementConfig};
use parallax_hardware::{MachineSpec, Point};

/// Compile `circuit` with the GRAPHINE baseline on `machine`.
pub fn compile_graphine(
    circuit: &Circuit,
    machine: &MachineSpec,
    placement: &PlacementConfig,
) -> BaselineResult {
    let layout = GraphineLayout::generate(circuit, placement);
    compile_graphine_with_layout(circuit, machine, &layout)
}

/// Compile with a pre-computed annealed layout (shared with Parallax in
/// head-to-head experiments so both see the identical step-1 topology).
pub fn compile_graphine_with_layout(
    circuit: &Circuit,
    machine: &MachineSpec,
    layout: &GraphineLayout,
) -> BaselineResult {
    let disc = discretize(circuit, layout, *machine);
    let positions: Vec<Point> =
        (0..circuit.num_qubits() as u32).map(|q| disc.array.position(q)).collect();
    let r_um = disc.interaction_radius_um;
    let routed = route(circuit, &positions, r_um);
    let layers = serialize_layers(&routed.circuit, &positions, r_um, machine.blockade_factor);
    BaselineResult {
        name: "graphine",
        routed: routed.circuit,
        swap_count: routed.swap_count,
        positions,
        interaction_radius_um: r_um,
        final_mapping: routed.final_mapping,
        layers,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parallax_circuit::CircuitBuilder;

    fn ring(n: usize) -> Circuit {
        let mut b = CircuitBuilder::new(n);
        for i in 0..n as u32 {
            b.cx(i, (i + 1) % n as u32);
        }
        b.build()
    }

    #[test]
    fn compiles_ring() {
        let c = ring(6);
        let machine = MachineSpec::quera_aquila_256();
        let r = compile_graphine(&c, &machine, &PlacementConfig::quick(1));
        assert_eq!(r.name, "graphine");
        assert_eq!(r.cz_count(), c.cz_count() + 3 * r.swap_count);
        let total: usize = r.layers.iter().map(|l| l.len()).sum();
        assert_eq!(total, r.routed.len());
    }

    #[test]
    fn shared_layout_is_deterministic() {
        let c = ring(5);
        let machine = MachineSpec::quera_aquila_256();
        let layout = GraphineLayout::generate(&c, &PlacementConfig::quick(3));
        let a = compile_graphine_with_layout(&c, &machine, &layout);
        let b = compile_graphine_with_layout(&c, &machine, &layout);
        assert_eq!(a.swap_count, b.swap_count);
        assert_eq!(a.positions, b.positions);
    }

    #[test]
    fn positions_sit_on_grid_sites() {
        let c = ring(4);
        let machine = MachineSpec::quera_aquila_256();
        let r = compile_graphine(&c, &machine, &PlacementConfig::quick(2));
        let pitch = machine.site_pitch_um();
        for p in &r.positions {
            let fx = p.x / pitch;
            let fy = p.y / pitch;
            assert!((fx - fx.round()).abs() < 1e-9);
            assert!((fy - fy.round()).abs() < 1e-9);
        }
    }
}
