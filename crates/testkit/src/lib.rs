//! # `parallax-testkit`: shared test generators for the workspace
//!
//! Every crate's tests used to carry its own ad-hoc random-circuit
//! generator (an LCG here, a proptest strategy there), each with slightly
//! different gate mixes and no shared shrink/replay story. This dev-only
//! crate centralizes them: seeded [`proptest`] strategies over {U3, CZ}
//! circuits, OpenQASM sources, machine specs, and placement configs, plus
//! the deterministic LCG generator for tests that want plain loops instead
//! of a proptest harness.
//!
//! The crate depends only on leaf crates (`parallax-circuit`,
//! `parallax-hardware`, `parallax-graphine`), so every other crate —
//! including ones those leaves dev-depend on transitively — can pull it in
//! as a dev-dependency without creating a build cycle.
//!
//! ```
//! use parallax_testkit::lcg_circuit;
//! let c = lcg_circuit(5, 40, 7);
//! assert_eq!(c.num_qubits(), 5);
//! assert_eq!(c.len(), 40);
//! ```

use parallax_circuit::{Circuit, CircuitBuilder, CircuitTemplate, Gate};
use parallax_graphine::PlacementConfig;
use parallax_hardware::MachineSpec;
use proptest::prelude::*;
use proptest::strategy::Union;
use proptest::TestRng;

/// Strategy: a random {U3, CZ} circuit on `n` qubits with `1..=max_len`
/// gates — U3s with bounded angles, CZs on distinct qubits. The historical
/// umbrella-test gate mix, now shared by every crate.
pub fn arb_circuit(n: usize, max_len: usize) -> impl Strategy<Value = Circuit> {
    let gate = arb_gate(n);
    proptest::collection::vec(gate, 1..=max_len).prop_map(move |gates| {
        let mut c = Circuit::new(n);
        for g in gates {
            c.push(g);
        }
        c
    })
}

/// Strategy: one random gate on `n` qubits (U3 with angles in ±3.2, or a
/// CZ between distinct qubits).
pub fn arb_gate(n: usize) -> Union<Gate> {
    assert!(n >= 2, "need at least two qubits for CZ gates");
    prop_oneof![
        (0..n as u32, -3.2f64..3.2, -3.2f64..3.2, -3.2f64..3.2)
            .prop_map(|(q, t, p, l)| Gate::u3(q, t, p, l)),
        (0..n as u32, 1..n as u32).prop_map(move |(a, d)| {
            let b = (a + d) % n as u32;
            if a == b {
                Gate::cz(a, (a + 1) % n as u32)
            } else {
                Gate::cz(a, b)
            }
        }),
    ]
}

/// Strategy: a random H/CZ circuit on `n` qubits with `min_len..max_len`
/// gates — the scheduler-shaped mix (no parametrized rotations), useful
/// when the test wants many structurally distinct dependency graphs
/// rather than angle coverage.
pub fn arb_hcz_circuit(n: u32, min_len: usize, max_len: usize) -> impl Strategy<Value = Circuit> {
    assert!(n >= 2, "need at least two qubits for CZ gates");
    let gate = prop_oneof![
        (0..n).prop_map(|q| (q, None)),
        (0..n, 1..n).prop_map(move |(a, d)| (a, Some((a + d) % n))),
    ];
    proptest::collection::vec(gate, min_len..max_len).prop_map(move |gates| {
        let mut b = CircuitBuilder::new(n as usize);
        for (q, partner) in gates {
            match partner {
                Some(p) if p != q => {
                    b.cz(q, p);
                }
                _ => {
                    b.h(q);
                }
            }
        }
        b.build()
    })
}

/// Strategy: an OpenQASM 2.0 source for a random circuit — the canonical
/// rendering of [`arb_circuit`], for tests that exercise the text
/// front end (parsers, the service protocol) rather than the IR.
pub fn arb_qasm(n: usize, max_len: usize) -> impl Strategy<Value = String> {
    arb_circuit(n, max_len).prop_map(|c| c.to_qasm())
}

/// Strategy: one of the paper's machines, sometimes with a non-default
/// AOD dimension (the Fig. 13 knob).
pub fn arb_machine() -> impl Strategy<Value = MachineSpec> {
    prop_oneof![
        Just(MachineSpec::quera_aquila_256()),
        Just(MachineSpec::atom_1225()),
        (3usize..12).prop_map(|dim| MachineSpec::quera_aquila_256().with_aod_dim(dim)),
    ]
}

/// Strategy: a large machine plus a sparse qubit count — synthetic square
/// grids from 256 up to 4096 sites ([`MachineSpec::synthetic_grid`]) and
/// the paper's Atom-1225, occupied at no more than ~6% of the sites
/// (capped at 64 qubits so annealed placement stays test-fast). This is
/// the regime the flat SoA/CSR data layouts target: site-indexed lanes
/// far larger than the occupied set, where per-entity allocations and
/// pointer-chasing used to dominate.
pub fn large_machine() -> impl Strategy<Value = (MachineSpec, usize)> {
    let spec = prop_oneof![
        (16usize..=64).prop_map(MachineSpec::synthetic_grid),
        Just(MachineSpec::atom_1225()),
    ];
    (spec, 0usize..1 << 16).prop_map(|(m, roll)| {
        let max_qubits = (m.num_sites() / 16).min(64);
        (m, 8 + roll % (max_qubits - 7))
    })
}

/// Strategy: a quick placement preset with a bounded random seed and
/// occasional multi-restart/multi-worker arms — every knob that steers
/// (or deliberately must not steer) placement results.
pub fn arb_quick_placement() -> impl Strategy<Value = PlacementConfig> {
    (0u64..1 << 20, 1usize..4, 0usize..4).prop_map(|(seed, restarts, workers)| PlacementConfig {
        restarts,
        workers,
        ..PlacementConfig::quick(seed)
    })
}

/// Strategy: a variational sweep family — one seeded {U3, CZ} structure
/// plus `1..=max_sets` angle vectors sized to the structure's parameter
/// slot count (3 per U3). Angle values mix uniform draws in ±3.2 with the
/// rebind edge cases `{0, π, -π, 2π}`, so template differential tests see
/// both generic and boundary bindings. Shrinking drops angle vectors
/// (keeping at least one) and zeroes them one at a time; the structure
/// itself does not shrink.
pub fn parameterized_circuit_family(
    n: usize,
    max_len: usize,
    max_sets: usize,
) -> CircuitFamilyStrategy {
    assert!(max_sets >= 1, "a sweep family needs at least one angle vector");
    CircuitFamilyStrategy { circuit: arb_circuit(n, max_len).boxed(), max_sets }
}

/// The [`parameterized_circuit_family`] strategy. A custom [`Strategy`]
/// impl because the angle-vector length depends on the generated
/// structure's slot count — a dependency `prop_map` cannot express.
pub struct CircuitFamilyStrategy {
    circuit: BoxedStrategy<Circuit>,
    max_sets: usize,
}

impl Strategy for CircuitFamilyStrategy {
    type Value = (Circuit, Vec<Vec<f64>>);

    fn new_value(&self, rng: &mut TestRng) -> Self::Value {
        use std::f64::consts::PI;
        let circuit = self.circuit.new_value(rng);
        let slots = CircuitTemplate::from_circuit(&circuit).num_params();
        let k = (1..=self.max_sets).new_value(rng);
        let kind = 0usize..8;
        let uniform = -3.2f64..3.2;
        let sets = (0..k)
            .map(|_| {
                (0..slots)
                    .map(|_| match kind.new_value(rng) {
                        0 => 0.0,
                        1 => PI,
                        2 => -PI,
                        3 => 2.0 * PI,
                        _ => uniform.new_value(rng),
                    })
                    .collect()
            })
            .collect();
        (circuit, sets)
    }

    fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
        let (circuit, sets) = value;
        let mut out = Vec::new();
        if sets.len() > 1 {
            out.push((circuit.clone(), sets[..1].to_vec()));
            for i in 0..sets.len() {
                let mut next = sets.clone();
                next.remove(i);
                out.push((circuit.clone(), next));
            }
        }
        for (i, set) in sets.iter().enumerate() {
            if set.iter().any(|&a| a != 0.0) {
                let mut next = sets.clone();
                next[i] = vec![0.0; set.len()];
                out.push((circuit.clone(), next));
            }
        }
        out
    }
}

/// A deterministic pseudo-random circuit without any RNG dependency (LCG
/// over the gate choice), exercising U3/H/CZ interleavings — for plain
/// `for seed in 0..k` test loops. Exactly `len` gates on `n` qubits.
pub fn lcg_circuit(n: u32, len: usize, seed: u64) -> Circuit {
    assert!(n >= 2, "need at least two qubits for CZ gates");
    let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
    let mut next = move || {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        (state >> 33) as u32
    };
    let mut c = Circuit::new(n as usize);
    for _ in 0..len {
        let a = next() % n;
        match next() % 3 {
            0 => {
                let t = (next() % 628) as f64 / 100.0;
                c.push(Gate::u3(a, t, t / 2.0, -t / 3.0));
            }
            1 => c.push(Gate::h(a)),
            _ => {
                let b = (a + 1 + next() % (n - 1)) % n;
                c.push(Gate::cz(a.min(b), a.max(b)));
            }
        }
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lcg_is_deterministic_and_sized() {
        let a = lcg_circuit(6, 48, 3);
        let b = lcg_circuit(6, 48, 3);
        assert_eq!(a.len(), 48);
        assert_eq!(a.to_qasm(), b.to_qasm(), "same seed, same circuit");
        let c = lcg_circuit(6, 48, 4);
        assert_ne!(a.to_qasm(), c.to_qasm(), "different seed, different circuit");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn circuits_stay_in_bounds(c in arb_circuit(5, 30)) {
            prop_assert_eq!(c.num_qubits(), 5);
            prop_assert!(!c.is_empty() && c.len() <= 30);
            for g in c.gates() {
                for &q in g.qubits().as_slice() {
                    prop_assert!(q < 5);
                }
            }
        }

        #[test]
        fn hcz_circuits_have_no_rotations(c in arb_hcz_circuit(4, 2, 20)) {
            prop_assert!(c.len() >= 2 && c.len() < 20);
            // CZ operands are always distinct.
            for g in c.gates() {
                if let parallax_circuit::Gate::Cz { a, b } = g {
                    prop_assert!(a != b);
                }
            }
        }

        #[test]
        fn qasm_sources_parse_back(src in arb_qasm(4, 12)) {
            let back = parallax_circuit::circuit_from_qasm_str(&src).map_err(|e| {
                TestCaseError::fail(format!("generated QASM must parse: {e}"))
            })?;
            prop_assert_eq!(back.num_qubits(), 4);
        }

        #[test]
        fn machines_are_valid(m in arb_machine()) {
            prop_assert!(m.aod_dim >= 3);
            prop_assert!(m.num_sites() >= 256);
        }

        #[test]
        fn large_machines_are_large_and_sparse((m, q) in large_machine()) {
            prop_assert!(m.num_sites() >= 256 && m.num_sites() <= 4096);
            prop_assert!(q >= 8 && q <= (m.num_sites() / 16).min(64),
                "{q} of {}", m.num_sites());
            prop_assert!(m.aod_dim >= 3);
        }

        #[test]
        fn families_bind_cleanly(family in parameterized_circuit_family(4, 16, 5)) {
            let (circuit, sets) = family;
            let template = CircuitTemplate::from_circuit(&circuit);
            prop_assert!(!sets.is_empty() && sets.len() <= 5);
            for set in &sets {
                prop_assert_eq!(set.len(), template.num_params());
                let bound = template.bind(set).map_err(|e| {
                    TestCaseError::fail(format!("family set must bind: {e}"))
                })?;
                // Binding preserves the structure, by construction.
                prop_assert_eq!(
                    parallax_circuit::structural_hash(&bound),
                    template.structural_hash()
                );
            }
        }

        #[test]
        fn placements_honour_their_knobs(p in arb_quick_placement()) {
            prop_assert!(p.restarts >= 1 && p.restarts < 4);
            // The worker count must never enter the fingerprint.
            let mut q = p.clone();
            q.workers = (q.workers + 1) % 4;
            prop_assert_eq!(p.fingerprint(), q.fingerprint());
        }
    }
}
