//! Full front-to-back pipeline from QASM text, mirroring the paper's
//! toolflow: QASM 2.0 in -> transpile to {U3, CZ} -> Parallax compile ->
//! metrics out.
//!
//! Run with: `cargo run --release --example qasm_pipeline`

use parallax_circuit::{circuit_from_qasm_str, optimize};
use parallax_core::{CompilerConfig, ParallaxCompiler};
use parallax_hardware::MachineSpec;
use parallax_sim::{parallax_fidelity_inputs, success_probability_with_readout};

/// A three-qubit Fredkin (controlled-SWAP) circuit — the paper's running
/// example from Fig. 1.
const FREDKIN_QASM: &str = r#"
OPENQASM 2.0;
include "qelib1.inc";
qreg q[3];
creg c[3];
h q[0];
x q[1];
cswap q[0],q[1],q[2];
measure q -> c;
"#;

fn main() {
    // Parse + lower to the neutral-atom basis.
    let raw = circuit_from_qasm_str(FREDKIN_QASM).expect("valid QASM");
    println!("lowered:    {raw}");

    // Peephole transpile (the paper's Qiskit-opt-3 stage).
    let circuit = optimize(&raw);
    println!("transpiled: {circuit}");

    // Compile and report.
    let machine = MachineSpec::quera_aquila_256();
    let result = ParallaxCompiler::new(machine, CompilerConfig::default()).compile(&circuit);
    println!(
        "schedule:   {} layers, {} moves, {} trap changes",
        result.schedule.stats.layer_count,
        result.schedule.stats.moves_planned,
        result.schedule.stats.trap_changes,
    );

    let inputs = parallax_fidelity_inputs(&result);
    println!(
        "success probability incl. readout: {:.4}",
        success_probability_with_readout(&inputs, &machine.params)
    );

    // Round-trip back out to QASM for downstream tools.
    let qasm_out = circuit.to_qasm();
    println!("\nre-emitted QASM ({} lines):\n{}", qasm_out.lines().count(), qasm_out);
}
