//! Head-to-head: Parallax vs ELDI vs GRAPHINE on one benchmark (the
//! paper's Fig. 9/10 comparison for a single circuit), with statevector
//! verification that every compiler's output is semantically correct.
//!
//! Run with: `cargo run --release --example compare_compilers [BENCH]`

use parallax_baselines::{compile_eldi, compile_graphine_with_layout, EldiConfig};
use parallax_core::{CompilerConfig, ParallaxCompiler};
use parallax_graphine::{GraphineLayout, PlacementConfig};
use parallax_hardware::MachineSpec;
use parallax_sim::{
    baseline_fidelity_inputs, baseline_routed_fidelity, parallax_fidelity_inputs,
    parallax_schedule_fidelity, success_probability,
};

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "QAOA".to_string());
    let bench = parallax_workloads::benchmark(&name)
        .unwrap_or_else(|| panic!("unknown benchmark '{name}' (try ADD, QAOA, QFT, ...)"));
    let circuit = bench.circuit(0);
    let machine = MachineSpec::quera_aquila_256();
    println!("benchmark {} ({} qubits): {}", bench.name, bench.qubits, circuit);

    // Parallax and the GRAPHINE baseline share the same annealed layout.
    let placement = PlacementConfig { seed: 0, ..Default::default() };
    let layout = GraphineLayout::generate(&circuit, &placement);

    let px = ParallaxCompiler::new(machine, CompilerConfig { placement, ..Default::default() })
        .compile_with_layout(&circuit, &layout);
    let el = compile_eldi(&circuit, &machine, &EldiConfig::default());
    let gr = compile_graphine_with_layout(&circuit, &machine, &layout);

    let pxi = parallax_fidelity_inputs(&px);
    let eli = baseline_fidelity_inputs(&el, &machine.params);
    let gri = baseline_fidelity_inputs(&gr, &machine.params);

    println!(
        "\n{:<12} {:>8} {:>8} {:>12} {:>12}",
        "compiler", "CZ", "SWAPs", "runtime(µs)", "success"
    );
    for (label, inputs, swaps) in
        [("graphine", &gri, gr.swap_count), ("eldi", &eli, el.swap_count), ("parallax", &pxi, 0)]
    {
        println!(
            "{label:<12} {:>8} {swaps:>8} {:>12.1} {:>12.3e}",
            inputs.cz_count,
            inputs.runtime_us,
            success_probability(inputs, &machine.params)
        );
    }

    // Verify semantics with the statevector simulator (small circuits only).
    if circuit.num_qubits() <= 16 {
        let fp = parallax_schedule_fidelity(&circuit, &px, 7);
        let fe = baseline_routed_fidelity(&circuit, &el, 7);
        let fg = baseline_routed_fidelity(&circuit, &gr, 7);
        println!("\nstatevector equivalence fidelity: parallax {fp:.12}, eldi {fe:.12}, graphine {fg:.12}");
        assert!((fp - 1.0).abs() < 1e-9 && (fe - 1.0).abs() < 1e-9 && (fg - 1.0).abs() < 1e-9);
        println!("all three outputs implement the input circuit exactly.");
    }
}
