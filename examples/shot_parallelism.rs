//! Shot parallelism (Section II-E / Fig. 11): tile copies of a small
//! circuit across the 1,225-atom machine and watch the total execution
//! time of 8,000 logical shots fall with the parallelization factor.
//!
//! Run with: `cargo run --release --example shot_parallelism`

use parallax_core::{replication_plan, CompilerConfig, ParallaxCompiler};
use parallax_hardware::MachineSpec;
use parallax_sim::{parallax_runtime_us, ShotModel};

fn main() {
    let bench = parallax_workloads::benchmark("ADV").expect("ADV exists");
    let circuit = bench.circuit(0);
    let machine = MachineSpec::atom_1225();

    let result = ParallaxCompiler::new(machine, CompilerConfig::default()).compile(&circuit);
    let runtime = parallax_runtime_us(&result);
    let (w, h) = result.footprint_sites();
    println!(
        "ADV ({} qubits) footprint: {w}x{h} sites on a {}x{} grid, {} AOD atoms per copy",
        bench.qubits,
        machine.grid_dim,
        machine.grid_dim,
        result.aod_selection.selected.len()
    );

    let plan = replication_plan(&result, &machine);
    println!(
        "maximum replication: {} x {} = {} logical shots per physical shot\n",
        plan.copies_x,
        plan.copies_y,
        plan.factor()
    );

    let model = ShotModel::default();
    println!("{:>8} {:>12} {:>16}", "factor", "phys shots", "total exec (s)");
    let mut factors: Vec<usize> = (1..=plan.copies_x.min(plan.copies_y)).map(|k| k * k).collect();
    if factors.last() != Some(&plan.factor()) {
        factors.push(plan.factor());
    }
    let mut last = f64::INFINITY;
    for f in factors {
        let total = model.total_execution_time_us(runtime, f) * 1e-6;
        println!("{f:>8} {:>12} {total:>16.4}", model.logical_shots.div_ceil(f));
        assert!(total <= last + 1e-12, "parallelism must not slow execution");
        last = total;
    }
}
