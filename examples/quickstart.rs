//! Quickstart: compile a GHZ circuit with Parallax and inspect the result.
//!
//! Run with: `cargo run --release --example quickstart`

use parallax_circuit::CircuitBuilder;
use parallax_core::{CompilerConfig, ParallaxCompiler};
use parallax_hardware::MachineSpec;
use parallax_sim::{parallax_fidelity_inputs, parallax_runtime_us, success_probability};

fn main() {
    // 1. Build (or parse from QASM) a circuit in the {U3, CZ} basis.
    let mut b = CircuitBuilder::new(8);
    b.h(0);
    for i in 0..7u32 {
        b.cx(i, i + 1);
    }
    let circuit = parallax_circuit::optimize(&b.build());
    println!("input circuit: {circuit}");

    // 2. Compile for QuEra's 256-qubit machine with default (paper) settings.
    let machine = MachineSpec::quera_aquila_256();
    let compiler = ParallaxCompiler::new(machine, CompilerConfig::default());
    let result = compiler.compile(&circuit);

    // 3. Inspect: zero SWAPs, layer schedule, atom movement statistics.
    let stats = &result.schedule.stats;
    println!(
        "compiled: {} layers, {} CZ, {} U3",
        stats.layer_count, stats.cz_count, stats.u3_count
    );
    println!("SWAPs inserted: {} (always zero for Parallax)", stats.swap_count);
    println!(
        "AOD atoms: {:?} | moves: {} | trap changes: {}",
        result.aod_selection.selected, stats.moves_planned, stats.trap_changes
    );

    // 4. Estimate the paper's evaluation metrics.
    let runtime = parallax_runtime_us(&result);
    let success = success_probability(&parallax_fidelity_inputs(&result), &machine.params);
    println!("single-shot runtime: {runtime:.1} µs");
    println!("probability of success: {success:.4}");

    assert_eq!(stats.swap_count, 0);
}
