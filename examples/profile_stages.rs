//! Per-stage compile profiling for one workload: compiles it N times and
//! prints the `PARALLAX_PROFILE` stage table (force-enabled, no env var
//! needed). This is the measurement behind the scheduler-stage numbers in
//! ROADMAP.md:
//!
//! ```text
//! cargo run --release --example profile_stages -- TFIM 10
//! ```
//!
//! The first compile anneals (cold layout); later ones hit the layout
//! cache, so with N > 1 the `schedule` row's mean is the warm serving cost.

use parallax_core::{profile, CompilerConfig, ParallaxCompiler};
use parallax_hardware::MachineSpec;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let name = args.first().map(String::as_str).unwrap_or("TFIM");
    let samples: usize = args.get(1).and_then(|v| v.parse().ok()).unwrap_or(10);
    let bench = parallax_workloads::benchmark(name).unwrap_or_else(|| {
        eprintln!("unknown workload {name:?}");
        std::process::exit(2);
    });
    let circuit = bench.circuit(0);
    let placement = parallax_bench::placement_for(bench.qubits, 0);
    let config = CompilerConfig { placement, ..CompilerConfig::default() };
    let compiler = ParallaxCompiler::new(MachineSpec::atom_1225(), config);

    // Force profiling on for this process regardless of the env var.
    profile::force_enable();
    for _ in 0..samples {
        let r = compiler.compile(&circuit);
        assert_eq!(r.cz_count(), circuit.cz_count());
    }
    println!(
        "== {} ({} qubits) x {samples} compiles on Atom-1225 ==\n{}",
        bench.name,
        bench.qubits,
        profile::render()
    );
}
