//! Workspace-wide differential test layer: every fast path the compiler
//! grew (pruned endpoint cascades, plan caches, parallel placement) is
//! diffed against its reference implementation on random inputs from
//! `parallax-testkit`, and schedules are cross-checked against the
//! statevector simulator — the oracle style every future optimization PR
//! inherits for free.
//!
//! The naive-oracle comparisons live in a `#[cfg(debug_assertions)]`
//! module because the oracles themselves are only compiled into debug
//! builds of `parallax-core`; the cache-path and simulator equivalences
//! run in every profile.

use parallax_core::{CompilerConfig, ParallaxCompiler};
use parallax_graphine::GraphineLayout;
use parallax_hardware::MachineSpec;
use parallax_service::compile_payload;
use parallax_sim::parallax_schedule_fidelity;
use parallax_testkit::{arb_circuit, arb_hcz_circuit, arb_quick_placement};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Repeat compiles of the same (circuit, config) are byte-identical —
    /// the second run answers from the layout cache and (for repeated AOD
    /// configurations) the cross-compile plan cache, and the canonical
    /// payload (which digests the full schedule, every move included)
    /// must not budge. Statevector equivalence closes the loop: the
    /// cached-path schedule still implements the circuit exactly.
    #[test]
    fn cached_recompiles_are_byte_identical_and_exact(
        circuit in arb_circuit(5, 24),
        seed in 0u64..64,
    ) {
        let circuit = parallax_circuit::optimize(&circuit);
        if circuit.is_empty() {
            return Ok(());
        }
        let compiler = ParallaxCompiler::new(
            MachineSpec::quera_aquila_256(),
            CompilerConfig::quick(seed),
        );
        let cold = compiler.compile(&circuit);
        let warm = compiler.compile(&circuit);
        prop_assert_eq!(
            compile_payload(&cold).encode(),
            compile_payload(&warm).encode(),
            "cache-assisted recompile must be byte-identical"
        );
        prop_assert_eq!(&cold.schedule.layers, &warm.schedule.layers);
        let f = parallax_schedule_fidelity(&circuit, &warm, seed ^ 0x5eed);
        prop_assert!((f - 1.0).abs() < 1e-7, "fidelity {}", f);
    }

    /// The placement worker count changes wall-clock time only, never the
    /// compilation — asserted around the caches (fresh layouts each side)
    /// so the parallel annealer itself is on trial, not the cache.
    #[test]
    fn placement_worker_count_never_steers_the_compile(
        circuit in arb_hcz_circuit(6, 2, 18),
        placement in arb_quick_placement(),
    ) {
        let circuit = parallax_circuit::optimize(&circuit);
        if circuit.is_empty() {
            return Ok(());
        }
        let machine = MachineSpec::quera_aquila_256();
        let config_at = |workers: usize| {
            let placement = parallax_graphine::PlacementConfig { workers, ..placement.clone() };
            CompilerConfig { seed: placement.seed, placement, ..CompilerConfig::default() }
        };
        let serial = config_at(1);
        let parallel = config_at(8);
        let layout_serial = GraphineLayout::generate(&circuit, &serial.placement);
        let layout_parallel = GraphineLayout::generate(&circuit, &parallel.placement);
        prop_assert_eq!(&layout_serial, &layout_parallel, "layouts must be bit-identical");
        let a = ParallaxCompiler::new(machine, serial).compile_with_layout(&circuit, &layout_serial);
        let b = ParallaxCompiler::new(machine, parallel)
            .compile_with_layout(&circuit, &layout_parallel);
        prop_assert_eq!(compile_payload(&a).encode(), compile_payload(&b).encode());
    }
}

/// Full-schedule byte-equality against the naive Algorithm 1 oracle (only
/// compiled in debug builds, like the oracle itself).
#[cfg(debug_assertions)]
mod against_naive_oracles {
    use super::*;
    use parallax_core::scheduler::schedule_gates_naive;
    use parallax_core::{discretize, schedule_gates, select_aod_qubits};
    use parallax_testkit::arb_machine;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(12))]

        /// The production scheduler — incremental frontier, spatial
        /// indexes, memos, plan caches, pruned endpoint cascades — against
        /// the verbatim naive implementation, across machines, seeds, and
        /// home-return arms: identical layers, moves, stats (modulo the
        /// cache counters the naive path cannot have), and final array
        /// state.
        #[test]
        fn full_schedules_are_bit_identical(
            circuit in arb_hcz_circuit(8, 4, 30),
            seed in 0u64..32,
            machine in arb_machine(),
            return_home in (0u8..2).prop_map(|b| b == 1),
        ) {
            let mut cfg = CompilerConfig::quick(seed);
            cfg.return_home = return_home;
            let layout = GraphineLayout::generate(&circuit, &cfg.placement);
            let mut fast = discretize(&circuit, &layout, machine);
            let sel = select_aod_qubits(&circuit, &mut fast, &cfg);
            let mut naive = fast.clone();
            let s_fast = schedule_gates(&circuit, &mut fast, &sel, &cfg);
            let s_naive = schedule_gates_naive(&circuit, &mut naive, &sel, &cfg);
            prop_assert_eq!(&s_fast.layers, &s_naive.layers);
            let mut stats = s_fast.stats.clone();
            stats.failed_move_memo_hits = 0;
            stats.plan_cache_hits = 0;
            stats.plan_cache_cross_hits = 0;
            prop_assert_eq!(&stats, &s_naive.stats);
            for q in 0..circuit.num_qubits() as u32 {
                prop_assert_eq!(fast.array.position(q), naive.array.position(q));
                prop_assert_eq!(fast.array.trap(q), naive.array.trap(q));
            }
        }
    }
}
