//! Workspace-wide differential test layer: every fast path the compiler
//! grew (pruned endpoint cascades, plan caches, parallel placement) is
//! diffed against its reference implementation on random inputs from
//! `parallax-testkit`, and schedules are cross-checked against the
//! statevector simulator — the oracle style every future optimization PR
//! inherits for free.
//!
//! The naive-oracle comparisons live in a `#[cfg(debug_assertions)]`
//! module because the oracles themselves are only compiled into debug
//! builds of `parallax-core`; the cache-path and simulator equivalences
//! run in every profile.

use parallax_core::{CompiledTemplate, CompilerConfig, ParallaxCompiler};
use parallax_graphine::GraphineLayout;
use parallax_hardware::MachineSpec;
use parallax_service::compile_payload;
use parallax_sim::parallax_schedule_fidelity;
use parallax_testkit::{
    arb_circuit, arb_hcz_circuit, arb_machine, arb_quick_placement, parameterized_circuit_family,
};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Repeat compiles of the same (circuit, config) are byte-identical —
    /// the second run answers from the layout cache and (for repeated AOD
    /// configurations) the cross-compile plan cache, and the canonical
    /// payload (which digests the full schedule, every move included)
    /// must not budge. Statevector equivalence closes the loop: the
    /// cached-path schedule still implements the circuit exactly.
    #[test]
    fn cached_recompiles_are_byte_identical_and_exact(
        circuit in arb_circuit(5, 24),
        seed in 0u64..64,
    ) {
        let circuit = parallax_circuit::optimize(&circuit);
        if circuit.is_empty() {
            return Ok(());
        }
        let compiler = ParallaxCompiler::new(
            MachineSpec::quera_aquila_256(),
            CompilerConfig::quick(seed),
        );
        let cold = compiler.compile(&circuit);
        let warm = compiler.compile(&circuit);
        prop_assert_eq!(
            compile_payload(&cold).encode(),
            compile_payload(&warm).encode(),
            "cache-assisted recompile must be byte-identical"
        );
        prop_assert_eq!(&cold.schedule.layers, &warm.schedule.layers);
        let f = parallax_schedule_fidelity(&circuit, &warm, seed ^ 0x5eed);
        prop_assert!((f - 1.0).abs() < 1e-7, "fidelity {}", f);
    }

    /// The variational fast path on trial: a [`CompiledTemplate`] built
    /// from one sweep member must serve *every* member. Each rebind's
    /// payload is diffed byte-for-byte against an independent cold compile
    /// of the bound circuit — fresh `GraphineLayout::generate`, no layout
    /// cache — and the shared schedule is statevector-checked against the
    /// bound circuit, across machines and seeds. This is the guarantee
    /// `parallax_core::template` documents as "carried by the differential
    /// layer": placement and scheduling never read a U3 angle.
    #[test]
    fn template_rebinds_match_independent_cold_compiles(
        family in parameterized_circuit_family(5, 20, 3),
        seed in 0u64..32,
        machine in arb_machine(),
    ) {
        let (structure, sets) = family;
        let config = CompilerConfig::quick(seed);
        let template =
            CompiledTemplate::compile(&ParallaxCompiler::new(machine, config.clone()), &structure);
        let shared = compile_payload(template.result()).encode();
        for set in &sets {
            let bound = template.rebind(set).map_err(|e| {
                TestCaseError::fail(format!("family set must rebind: {e}"))
            })?;
            let layout = GraphineLayout::generate(&bound, &config.placement);
            let cold = ParallaxCompiler::new(machine, config.clone())
                .compile_with_layout(&bound, &layout);
            prop_assert_eq!(
                &shared,
                &compile_payload(&cold).encode(),
                "rebind payload must be byte-identical to a cold compile of the bound member"
            );
            let f = parallax_schedule_fidelity(&bound, template.result(), seed ^ 0x7e31);
            prop_assert!((f - 1.0).abs() < 1e-7, "fidelity {}", f);
        }
    }

    /// The placement worker count changes wall-clock time only, never the
    /// compilation — asserted around the caches (fresh layouts each side)
    /// so the parallel annealer itself is on trial, not the cache.
    #[test]
    fn placement_worker_count_never_steers_the_compile(
        circuit in arb_hcz_circuit(6, 2, 18),
        placement in arb_quick_placement(),
    ) {
        let circuit = parallax_circuit::optimize(&circuit);
        if circuit.is_empty() {
            return Ok(());
        }
        let machine = MachineSpec::quera_aquila_256();
        let config_at = |workers: usize| {
            let placement = parallax_graphine::PlacementConfig { workers, ..placement.clone() };
            CompilerConfig { seed: placement.seed, placement, ..CompilerConfig::default() }
        };
        let serial = config_at(1);
        let parallel = config_at(8);
        let layout_serial = GraphineLayout::generate(&circuit, &serial.placement);
        let layout_parallel = GraphineLayout::generate(&circuit, &parallel.placement);
        prop_assert_eq!(&layout_serial, &layout_parallel, "layouts must be bit-identical");
        let a = ParallaxCompiler::new(machine, serial).compile_with_layout(&circuit, &layout_serial);
        let b = ParallaxCompiler::new(machine, parallel)
            .compile_with_layout(&circuit, &layout_parallel);
        prop_assert_eq!(compile_payload(&a).encode(), compile_payload(&b).encode());
    }

    /// The flat CSR data layouts against their nested-Vec oracles, row for
    /// row: the interaction graph's adjacency (neighbor/weight/edge-id
    /// order plus precomputed degrees, where the CSR build shares the
    /// energy table's `b != a` incidence guard) and the circuit's
    /// per-qubit gate-index lists the scheduler frontier walks.
    #[test]
    fn csr_layouts_match_nested_oracles(circuit in arb_circuit(8, 48)) {
        let g = parallax_graphine::InteractionGraph::from_circuit(&circuit);
        let csr = g.csr();
        let mut nested: Vec<Vec<(u32, f64, u32)>> = vec![Vec::new(); g.num_qubits];
        for (e, &(a, b, w)) in g.edges.iter().enumerate() {
            nested[a as usize].push((b, w, e as u32));
            if b != a {
                nested[b as usize].push((a, w, e as u32));
            }
        }
        let degrees = g.weighted_degrees();
        for q in 0..g.num_qubits {
            let row: Vec<(u32, f64, u32)> = csr
                .neighbors(q)
                .iter()
                .zip(csr.weights(q))
                .zip(csr.edge_ids(q))
                .map(|((&n, &w), &e)| (n, w, e))
                .collect();
            prop_assert_eq!(&row, &nested[q], "adjacency row {}", q);
            prop_assert_eq!(csr.degree(q).to_bits(), degrees[q].to_bits(), "degree {}", q);
        }

        let gates_csr = circuit.qubit_gates_csr();
        let nested_gates = circuit.qubit_gate_indices();
        for (q, nested_row) in nested_gates.iter().enumerate().take(circuit.num_qubits()) {
            let row: Vec<usize> = gates_csr.row(q).iter().map(|&i| i as usize).collect();
            prop_assert_eq!(&row, nested_row, "gate row {}", q);
        }
    }
}

/// The rebind boundary angles, pinned deterministically: a QAOA-shaped
/// ansatz bound with every slot at 0, π, 2π, and a negative angle, on both
/// paper machines. Random sweeps above cover these values probabilistically;
/// this test guarantees they are exercised on every run, because 0-angle
/// U3s are exactly what `optimize` elides — the template fast path must
/// stay byte-faithful even where the circuit-level optimizer would not.
#[test]
fn rebind_edge_angles_stay_byte_faithful() {
    use parallax_circuit::Gate;
    use std::f64::consts::PI;

    let mut structure = parallax_circuit::Circuit::new(4);
    for q in 0..4u32 {
        structure.push(Gate::u3(q, 0.7, 0.1, -0.4));
    }
    for q in 0..3u32 {
        structure.push(Gate::cz(q, q + 1));
    }
    for q in 0..4u32 {
        structure.push(Gate::u3(q, -1.2, 0.9, 0.2));
    }
    let slots = 24;
    let edge_sets: Vec<Vec<f64>> = vec![
        vec![0.0; slots],
        vec![PI; slots],
        vec![2.0 * PI; slots],
        vec![-PI; slots],
        (0..slots).map(|i| if i % 2 == 0 { 0.0 } else { -2.0 * PI }).collect(),
    ];

    for machine in [MachineSpec::quera_aquila_256(), MachineSpec::atom_1225()] {
        for seed in [3u64, 17] {
            let config = CompilerConfig::quick(seed);
            let template = CompiledTemplate::compile(
                &ParallaxCompiler::new(machine, config.clone()),
                &structure,
            );
            assert_eq!(template.num_params(), slots);
            let shared = compile_payload(template.result()).encode();
            for set in &edge_sets {
                let bound = template.rebind(set).expect("edge angles are finite");
                let layout = GraphineLayout::generate(&bound, &config.placement);
                let cold = ParallaxCompiler::new(machine, config.clone())
                    .compile_with_layout(&bound, &layout);
                assert_eq!(
                    shared,
                    compile_payload(&cold).encode(),
                    "edge-angle rebind must match a cold compile (seed {seed})"
                );
                let f = parallax_schedule_fidelity(&bound, template.result(), seed ^ 0xedce);
                assert!((f - 1.0).abs() < 1e-7, "fidelity {f} (seed {seed})");
            }
        }
    }
}

/// Full-schedule byte-equality against the naive Algorithm 1 oracle (only
/// compiled in debug builds, like the oracle itself).
#[cfg(debug_assertions)]
mod against_naive_oracles {
    use super::*;
    use parallax_core::scheduler::schedule_gates_naive;
    use parallax_core::{discretize, schedule_gates, select_aod_qubits};
    use parallax_testkit::arb_machine;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(12))]

        /// The production scheduler — incremental frontier, spatial
        /// indexes, memos, plan caches, pruned endpoint cascades — against
        /// the verbatim naive implementation, across machines, seeds, and
        /// home-return arms: identical layers, moves, stats (modulo the
        /// cache counters the naive path cannot have), and final array
        /// state.
        #[test]
        fn full_schedules_are_bit_identical(
            circuit in arb_hcz_circuit(8, 4, 30),
            seed in 0u64..32,
            machine in arb_machine(),
            return_home in (0u8..2).prop_map(|b| b == 1),
        ) {
            let mut cfg = CompilerConfig::quick(seed);
            cfg.return_home = return_home;
            let layout = GraphineLayout::generate(&circuit, &cfg.placement);
            let mut fast = discretize(&circuit, &layout, machine);
            let sel = select_aod_qubits(&circuit, &mut fast, &cfg);
            let mut naive = fast.clone();
            let s_fast = schedule_gates(&circuit, &mut fast, &sel, &cfg);
            let s_naive = schedule_gates_naive(&circuit, &mut naive, &sel, &cfg);
            prop_assert_eq!(&s_fast.layers, &s_naive.layers);
            let mut stats = s_fast.stats.clone();
            stats.failed_move_memo_hits = 0;
            stats.plan_cache_hits = 0;
            stats.plan_cache_cross_hits = 0;
            stats.bucket_scratch_allocs = 0;
            stats.home_return_skips = 0;
            prop_assert_eq!(&stats, &s_naive.stats);
            for q in 0..circuit.num_qubits() as u32 {
                prop_assert_eq!(fast.array.position(q), naive.array.position(q));
                prop_assert_eq!(fast.array.trap(q), naive.array.trap(q));
            }
        }

        /// The CSR dependency DAG against the retained nested-Vec builder:
        /// predecessor and successor lists must match element for element,
        /// in the exact discovery order the nested construction produced.
        #[test]
        fn dag_csr_matches_nested_oracle(circuit in arb_hcz_circuit(10, 4, 60)) {
            use parallax_circuit::DependencyDag;
            let dag = DependencyDag::build(&circuit);
            let (preds, succs) = DependencyDag::build_nested(&circuit);
            for g in 0..circuit.len() {
                let p: Vec<usize> = dag.predecessors(g).iter().map(|&x| x as usize).collect();
                prop_assert_eq!(&p, &preds[g], "preds of gate {}", g);
                let s: Vec<usize> = dag.successors(g).iter().map(|&x| x as usize).collect();
                prop_assert_eq!(&s, &succs[g], "succs of gate {}", g);
            }
        }
    }

    /// One deterministic large-machine arm: a sparse 40-qubit circuit on
    /// the 2116-site Synthetic-2048 grid, fast scheduler vs the naive
    /// Algorithm 1. The proptest arms above stay on the paper machines
    /// (256/1225 sites); this pins the packed-lane `AtomArray` and CSR
    /// walks at a 46x46 grid where the site-indexed lanes dwarf the
    /// occupied set.
    #[test]
    fn synthetic_2048_schedule_matches_naive() {
        let machine = MachineSpec::synthetic_grid(46);
        let circuit = parallax_testkit::lcg_circuit(40, 120, 2048);
        let cfg = CompilerConfig::quick(9);
        let layout = GraphineLayout::generate(&circuit, &cfg.placement);
        let mut fast = discretize(&circuit, &layout, machine);
        let sel = select_aod_qubits(&circuit, &mut fast, &cfg);
        let mut naive = fast.clone();
        let s_fast = schedule_gates(&circuit, &mut fast, &sel, &cfg);
        let s_naive = schedule_gates_naive(&circuit, &mut naive, &sel, &cfg);
        assert_eq!(s_fast.layers, s_naive.layers);
        let mut stats = s_fast.stats.clone();
        stats.failed_move_memo_hits = 0;
        stats.plan_cache_hits = 0;
        stats.plan_cache_cross_hits = 0;
        stats.bucket_scratch_allocs = 0;
        stats.home_return_skips = 0;
        assert_eq!(stats, s_naive.stats);
        for q in 0..40u32 {
            assert_eq!(fast.array.position(q), naive.array.position(q), "q{q} position");
            assert_eq!(fast.array.trap(q), naive.array.trap(q), "q{q} trap");
        }
    }
}
