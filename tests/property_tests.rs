//! Property-based tests over the core invariants of the suite, driven by
//! proptest-generated random circuits and layouts.

use parallax_anneal::{dual_annealing_multi, AnnealParams, MultiRestartParams};
use parallax_baselines::{compile_eldi, EldiConfig};
use parallax_circuit::{optimize, Circuit, DependencyDag};
use parallax_circuit::{zyz_decompose, Mat2};
use parallax_core::{CompilerConfig, ParallaxCompiler};
use parallax_graphine::{connecting_radius, is_geometrically_connected, GraphineLayout};
use parallax_hardware::MachineSpec;
use parallax_sim::{baseline_routed_fidelity, parallax_schedule_fidelity, simulate};
use parallax_testkit::arb_circuit;
use proptest::prelude::*;
use std::f64::consts::PI;

/// Strategy: a random circuit on `n` qubits with up to `len` gates (the
/// workspace-shared generator from `parallax-testkit`).
fn random_circuit(n: usize, len: usize) -> impl Strategy<Value = Circuit> {
    arb_circuit(n, len)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The optimizer never changes circuit semantics.
    #[test]
    fn optimizer_preserves_unitary(circuit in random_circuit(4, 24)) {
        let optimized = optimize(&circuit);
        let a = simulate(&circuit);
        let b = simulate(&optimized);
        prop_assert!((a.fidelity(&b) - 1.0).abs() < 1e-6,
            "fidelity {} after optimizing {} -> {} gates",
            a.fidelity(&b), circuit.len(), optimized.len());
        // And it never grows the circuit.
        prop_assert!(optimized.len() <= circuit.len());
    }

    /// ZYZ extraction reproduces any product of two random U3 matrices.
    #[test]
    fn zyz_roundtrip_products(
        t1 in 0.0f64..PI, p1 in -PI..PI, l1 in -PI..PI,
        t2 in 0.0f64..PI, p2 in -PI..PI, l2 in -PI..PI,
    ) {
        let m = Mat2::u3(t2, p2, l2).mul(&Mat2::u3(t1, p1, l1));
        let (t, p, l) = zyz_decompose(&m);
        prop_assert!(Mat2::u3(t, p, l).phase_distance(&m) < 1e-7);
    }

    /// Parallax schedules are dependency-correct permutations with exact
    /// semantics, regardless of circuit shape or seed.
    #[test]
    fn parallax_schedule_invariants(circuit in random_circuit(5, 20), seed in 0u64..32) {
        let circuit = optimize(&circuit);
        if circuit.is_empty() {
            return Ok(());
        }
        let r = ParallaxCompiler::new(
            MachineSpec::quera_aquila_256(),
            CompilerConfig::quick(seed),
        ).compile(&circuit);
        // Permutation of the input gate indices.
        let order = r.schedule.gate_order();
        prop_assert_eq!(order.len(), circuit.len());
        // Dependency-respecting.
        prop_assert!(DependencyDag::build(&circuit).respects_order(&order));
        // Zero SWAPs: CZ count preserved exactly.
        prop_assert_eq!(r.cz_count(), circuit.cz_count());
        // Exact unitary.
        let f = parallax_schedule_fidelity(&circuit, &r, seed ^ 0xabc);
        prop_assert!((f - 1.0).abs() < 1e-7, "fidelity {}", f);
    }

    /// SWAP routing preserves semantics up to its reported permutation and
    /// adds exactly three CZ per SWAP.
    #[test]
    fn eldi_routing_invariants(circuit in random_circuit(5, 16)) {
        let circuit = optimize(&circuit);
        if circuit.is_empty() {
            return Ok(());
        }
        let r = compile_eldi(&circuit, &MachineSpec::quera_aquila_256(), &EldiConfig::default());
        prop_assert_eq!(r.cz_count(), circuit.cz_count() + 3 * r.swap_count);
        let f = baseline_routed_fidelity(&circuit, &r, 99);
        prop_assert!((f - 1.0).abs() < 1e-7, "fidelity {}", f);
        // final_mapping is a permutation.
        let mut seen = vec![false; circuit.num_qubits()];
        for &p in &r.final_mapping {
            prop_assert!(!seen[p as usize]);
            seen[p as usize] = true;
        }
    }

    /// The connecting radius really is minimal for connectivity.
    #[test]
    fn connecting_radius_is_tight(
        points in proptest::collection::vec((0.0f64..1.0, 0.0f64..1.0), 2..12)
    ) {
        let r = connecting_radius(&points);
        prop_assert!(is_geometrically_connected(&points, r));
        if r > 1e-9 {
            prop_assert!(!is_geometrically_connected(&points, r * 0.999));
        }
    }

    /// Statevector simulation is norm-preserving for arbitrary circuits.
    #[test]
    fn simulation_preserves_norm(circuit in random_circuit(4, 30)) {
        let sv = simulate(&circuit);
        prop_assert!((sv.norm() - 1.0).abs() < 1e-9);
    }

    /// Parallel multi-restart annealing returns a bit-identical
    /// `AnnealResult` for 1, 2, and 8 workers — at any seed and restart
    /// count, the worker pool only changes wall-clock time, never the
    /// result.
    #[test]
    fn parallel_annealing_is_worker_count_invariant(seed in 0u64..10_000, restarts in 1usize..5) {
        fn rastrigin(x: &[f64]) -> f64 {
            let a = 10.0;
            a * x.len() as f64
                + x.iter().map(|v| v * v - a * (2.0 * PI * v).cos()).sum::<f64>()
        }
        let bounds = vec![(-5.12, 5.12); 3];
        let base = AnnealParams { seed, max_iter: 60, local_search_evals: 120, ..Default::default() };
        let at = |workers| dual_annealing_multi(
            || rastrigin,
            &bounds,
            &MultiRestartParams { base: base.clone(), restarts, workers },
        );
        let reference = at(1);
        for workers in [2usize, 8] {
            let r = at(workers);
            // Bit-level identity, not just approximate equality.
            let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
            prop_assert_eq!(bits(&r.x), bits(&reference.x), "workers={}", workers);
            prop_assert_eq!(r.energy.to_bits(), reference.energy.to_bits());
            prop_assert_eq!(
                (r.evals, r.iterations, r.restarts, r.allocs),
                (reference.evals, reference.iterations, reference.restarts, reference.allocs)
            );
        }
    }

    /// Compiling through the process-wide layout cache (cold miss or warm
    /// hit) is bit-identical to compiling with a freshly annealed layout.
    #[test]
    fn layout_cache_path_is_bit_identical_to_direct_anneal(
        circuit in random_circuit(4, 12), seed in 0u64..64
    ) {
        let circuit = optimize(&circuit);
        if circuit.is_empty() {
            return Ok(());
        }
        let cfg = CompilerConfig::quick(seed);
        let compiler = ParallaxCompiler::new(MachineSpec::quera_aquila_256(), cfg.clone());
        let cold = compiler.compile(&circuit); // miss (or hit from an equal case)
        let warm = compiler.compile(&circuit); // guaranteed hit
        let layout = GraphineLayout::generate(&circuit, &cfg.placement); // cache bypassed
        let direct = compiler.compile_with_layout(&circuit, &layout);
        prop_assert_eq!(&cold.home_positions, &direct.home_positions);
        prop_assert_eq!(&warm.home_positions, &direct.home_positions);
        prop_assert_eq!(warm.schedule.gate_order(), direct.schedule.gate_order());
        prop_assert_eq!(warm.schedule.stats.trap_changes, direct.schedule.stats.trap_changes);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Whole-pipeline compiles on large sparse machines — synthetic grids
    /// up to 4096 sites at a few percent occupancy — stay dependency
    /// correct and SWAP-free. Few cases, because each one anneals; the
    /// point is that every site-indexed lane in the packed `AtomArray`
    /// (and every CSR walk over it) is exercised at 46x46 and 64x64
    /// extents, not just the paper machines' 16x16 and 35x35.
    #[test]
    fn large_machine_compiles_are_dependency_correct(
        (machine, qubits) in parallax_testkit::large_machine(),
        seed in 0u64..16,
    ) {
        let circuit = parallax_testkit::lcg_circuit(qubits as u32, 3 * qubits, seed);
        let r = ParallaxCompiler::new(machine, CompilerConfig::quick(seed)).compile(&circuit);
        prop_assert!(DependencyDag::build(&circuit).respects_order(&r.schedule.gate_order()));
        prop_assert_eq!(r.schedule.stats.cz_count, circuit.cz_count());
        prop_assert_eq!(r.schedule.stats.swap_count, 0);
        prop_assert_eq!(r.num_qubits, circuit.num_qubits());
    }
}
