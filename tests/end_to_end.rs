//! End-to-end integration tests spanning every crate: QASM in, compiled
//! schedules out, metrics and semantics verified.

use parallax_baselines::{compile_eldi, compile_graphine_with_layout, EldiConfig};
use parallax_circuit::{circuit_from_qasm_str, optimize, DependencyDag};
use parallax_core::{CompilerConfig, ParallaxCompiler};
use parallax_graphine::{GraphineLayout, PlacementConfig};
use parallax_hardware::MachineSpec;
use parallax_sim::{
    baseline_fidelity_inputs, baseline_routed_fidelity, parallax_fidelity_inputs,
    parallax_schedule_fidelity, success_probability,
};

fn quick_cfg(seed: u64) -> CompilerConfig {
    CompilerConfig::quick(seed)
}

#[test]
fn qasm_to_schedule_pipeline() {
    let src = "OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[4];\ncreg c[4];\n\
               h q[0];\ncx q[0],q[1];\nccx q[0],q[1],q[2];\ncx q[2],q[3];\nmeasure q -> c;\n";
    let circuit = optimize(&circuit_from_qasm_str(src).unwrap());
    let machine = MachineSpec::quera_aquila_256();
    let result = ParallaxCompiler::new(machine, quick_cfg(1)).compile(&circuit);

    assert_eq!(result.schedule.stats.swap_count, 0);
    assert_eq!(result.cz_count(), circuit.cz_count());
    assert!(DependencyDag::build(&circuit).respects_order(&result.schedule.gate_order()));
    let f = parallax_schedule_fidelity(&circuit, &result, 11);
    assert!((f - 1.0).abs() < 1e-9, "fidelity {f}");
}

#[test]
fn all_small_benchmarks_compile_and_verify() {
    // Every benchmark small enough for the statevector simulator is
    // compiled by all three compilers and checked for exact semantics.
    let machine = MachineSpec::quera_aquila_256();
    for bench in parallax_workloads::all_benchmarks() {
        if bench.qubits > 13 {
            continue;
        }
        let circuit = bench.circuit(3);
        let placement = PlacementConfig::quick(3);
        let layout = GraphineLayout::generate(&circuit, &placement);

        let px = ParallaxCompiler::new(
            machine,
            CompilerConfig { seed: 3, placement: placement.clone(), ..Default::default() },
        )
        .compile_with_layout(&circuit, &layout);
        assert_eq!(px.cz_count(), circuit.cz_count(), "{}", bench.name);
        let f = parallax_schedule_fidelity(&circuit, &px, 5);
        assert!((f - 1.0).abs() < 1e-9, "{}: parallax fidelity {f}", bench.name);

        let el = compile_eldi(&circuit, &machine, &EldiConfig::default());
        let f = baseline_routed_fidelity(&circuit, &el, 5);
        assert!((f - 1.0).abs() < 1e-9, "{}: eldi fidelity {f}", bench.name);

        let gr = compile_graphine_with_layout(&circuit, &machine, &layout);
        let f = baseline_routed_fidelity(&circuit, &gr, 5);
        assert!((f - 1.0).abs() < 1e-9, "{}: graphine fidelity {f}", bench.name);
    }
}

#[test]
fn parallax_never_exceeds_baseline_cz_counts() {
    let machine = MachineSpec::quera_aquila_256();
    for bench in parallax_workloads::all_benchmarks() {
        if bench.qubits > 18 {
            continue;
        }
        let circuit = bench.circuit(0);
        let placement = PlacementConfig::quick(0);
        let layout = GraphineLayout::generate(&circuit, &placement);
        let px = ParallaxCompiler::new(
            machine,
            CompilerConfig { seed: 0, placement: placement.clone(), ..Default::default() },
        )
        .compile_with_layout(&circuit, &layout);
        let el = compile_eldi(&circuit, &machine, &EldiConfig::default());
        let gr = compile_graphine_with_layout(&circuit, &machine, &layout);
        assert!(px.cz_count() <= el.cz_count(), "{} vs eldi", bench.name);
        assert!(px.cz_count() <= gr.cz_count(), "{} vs graphine", bench.name);
    }
}

#[test]
fn success_probability_tracks_cz_counts() {
    let machine = MachineSpec::quera_aquila_256();
    let bench = parallax_workloads::benchmark("GCM").unwrap();
    let circuit = bench.circuit(1);
    let placement = PlacementConfig::quick(1);
    let layout = GraphineLayout::generate(&circuit, &placement);
    let px = ParallaxCompiler::new(
        machine,
        CompilerConfig { seed: 1, placement: placement.clone(), ..Default::default() },
    )
    .compile_with_layout(&circuit, &layout);
    let gr = compile_graphine_with_layout(&circuit, &machine, &layout);
    let ps = success_probability(&parallax_fidelity_inputs(&px), &machine.params);
    let gs = success_probability(&baseline_fidelity_inputs(&gr, &machine.params), &machine.params);
    if gr.swap_count > 0 {
        assert!(ps > gs, "parallax {ps} vs graphine {gs} with {} swaps", gr.swap_count);
    }
}

#[test]
fn tfim_low_connectivity_story() {
    // The paper: TFIM is the low-connectivity case where baselines need few
    // or no SWAPs, so Parallax's CZ advantage vanishes (Fig. 9).
    let circuit = parallax_workloads::simulation::tfim_ring(16, 2);
    let machine = MachineSpec::quera_aquila_256();
    let placement = PlacementConfig::quick(2);
    let layout = GraphineLayout::generate(&circuit, &placement);
    let px = ParallaxCompiler::new(
        machine,
        CompilerConfig { seed: 2, placement: placement.clone(), ..Default::default() },
    )
    .compile_with_layout(&circuit, &layout);
    let el = compile_eldi(&circuit, &machine, &EldiConfig::default());
    // Both should be at (or very near) the input CZ count.
    assert_eq!(px.cz_count(), circuit.cz_count());
    assert!(
        el.cz_count() <= circuit.cz_count() + 3 * 8,
        "eldi needed {} swaps on a ring",
        el.swap_count
    );
}

#[test]
fn ablations_change_behaviour_not_semantics() {
    let bench = parallax_workloads::benchmark("QAOA").unwrap();
    let circuit = bench.circuit(4);
    let machine = MachineSpec::quera_aquila_256();
    let placement = PlacementConfig::quick(4);
    let layout = GraphineLayout::generate(&circuit, &placement);

    for cfg in [
        CompilerConfig { seed: 4, placement: placement.clone(), ..Default::default() },
        CompilerConfig { seed: 4, placement: placement.clone(), ..Default::default() }
            .without_home_return(),
    ] {
        let r = ParallaxCompiler::new(machine, cfg).compile_with_layout(&circuit, &layout);
        let f = parallax_schedule_fidelity(&circuit, &r, 9);
        assert!((f - 1.0).abs() < 1e-9);
        assert_eq!(r.cz_count(), circuit.cz_count());
    }
}

#[test]
fn aod_dim_ablation_compiles_at_all_counts() {
    let bench = parallax_workloads::benchmark("ADD").unwrap();
    let circuit = bench.circuit(5);
    let placement = PlacementConfig::quick(5);
    let layout = GraphineLayout::generate(&circuit, &placement);
    for aod in [1usize, 5, 10, 20, 40] {
        let machine = MachineSpec::quera_aquila_256().with_aod_dim(aod);
        let r = ParallaxCompiler::new(
            machine,
            CompilerConfig { seed: 5, placement: placement.clone(), ..Default::default() },
        )
        .compile_with_layout(&circuit, &layout);
        assert_eq!(r.cz_count(), circuit.cz_count(), "aod_dim {aod}");
        assert!(r.aod_selection.selected.len() <= aod);
    }
}
