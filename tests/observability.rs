//! Observability never changes compile output — the tentpole contract of
//! the tracing layer, proven by byte-diffing payloads.
//!
//! Every test here drives the full pipeline twice over the same input —
//! once with span tracing enabled, once disabled — and asserts that the
//! canonically encoded result payload (the exact bytes the service caches
//! and serves) is identical. Spans only read clocks and write into a side
//! ring buffer; metrics only bump atomics; neither may influence
//! placement, discretization, AOD selection, or scheduling.
//!
//! The Chrome-export tests double as the structural check behind the CI
//! smoke run: exported JSON must parse, and spans must nest properly
//! (every child contained in its parent, depth = parent depth + 1).

use parallax_core::{CompilerConfig, ParallaxCompiler};
use parallax_hardware::MachineSpec;
use parallax_service::{compile_payload, json};
use parallax_trace as trace;
use std::sync::Mutex;

/// The enable flag is process-global, so tests that flip it must not
/// interleave; a poisoned lock (failed sibling) must not cascade.
static TRACE_LOCK: Mutex<()> = Mutex::new(());

fn trace_lock() -> std::sync::MutexGuard<'static, ()> {
    TRACE_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

fn machines() -> [MachineSpec; 2] {
    [MachineSpec::quera_aquila_256(), MachineSpec::atom_1225()]
}

/// One full compile of `workload` at `seed`, returning the canonical
/// service payload bytes, with tracing flipped to `traced` for the call.
fn payload(machine: &MachineSpec, workload: &str, seed: u64, traced: bool) -> String {
    trace::set_enabled(traced);
    let circuit = parallax_workloads::benchmark(workload).expect(workload).circuit(seed);
    let compiler = ParallaxCompiler::new(*machine, CompilerConfig::quick(seed));
    let result = compiler.compile(&circuit);
    trace::set_enabled(false);
    compile_payload(&result).encode()
}

#[test]
fn traced_compiles_are_byte_identical_to_untraced() {
    let _lock = trace_lock();
    for machine in &machines() {
        for seed in 0..3u64 {
            // Alternate which mode runs first so both cold-cache and
            // warm-cache compiles execute with tracing enabled.
            let (first_traced, second_traced) = (seed % 2 == 0, seed % 2 != 0);
            let a = payload(machine, "ADD", seed, first_traced);
            let b = payload(machine, "ADD", seed, second_traced);
            assert_eq!(a, b, "tracing changed the compiled payload ({} seed {seed})", machine.name);
        }
    }
}

#[test]
fn traced_sweep_payloads_are_byte_identical() {
    let _lock = trace_lock();
    let machine = MachineSpec::quera_aquila_256();
    let circuit = parallax_workloads::benchmark("TFIM").expect("TFIM").circuit(0);
    let compiler = ParallaxCompiler::new(machine, CompilerConfig::quick(0));
    let key = parallax_core::template_key(&compiler, &circuit);

    trace::set_enabled(false);
    let (untraced, _) = parallax_core::compiled_template_keyed(key, &compiler, &circuit);
    let untraced = compile_payload(untraced.result()).encode();

    trace::set_enabled(true);
    let (traced, _) = parallax_core::compiled_template_keyed(key, &compiler, &circuit);
    let traced = compile_payload(traced.result()).encode();
    trace::set_enabled(false);

    assert_eq!(untraced, traced, "tracing changed the template fast path's payload");
}

#[test]
fn chrome_export_parses_and_spans_nest() {
    let _lock = trace_lock();
    trace::set_enabled(true);
    let circuit = parallax_workloads::benchmark("QFT").expect("QFT").circuit(1);
    let compiler = ParallaxCompiler::new(MachineSpec::quera_aquila_256(), CompilerConfig::quick(1));
    let _guard = trace::trace_id_scope(trace::next_trace_id());
    let _ = compiler.compile(&circuit);
    drop(_guard);
    trace::set_enabled(false);

    let events = trace::snapshot_events();
    assert!(!events.is_empty(), "a traced compile must record spans");
    trace::validate_nesting(&events).expect("spans must nest");

    let exported = json::parse(&trace::export_chrome(&events)).expect("valid JSON");
    let arr = match exported.get("traceEvents") {
        Some(parallax_service::Json::Arr(a)) => a,
        other => panic!("traceEvents must be an array, got {other:?}"),
    };
    assert_eq!(arr.len(), events.len());
    let names: Vec<&str> =
        arr.iter().filter_map(|e| e.get("name").and_then(parallax_service::Json::as_str)).collect();
    // The acceptance chain: pipeline root, its stages, the scheduler's
    // sub-stages, and a cache probe all appear in one export.
    for required in
        ["compile", "stage.placement", "stage.schedule", "schedule.frontier", "schedule.movement"]
    {
        assert!(names.contains(&required), "span '{required}' missing from {names:?}");
    }
    for e in arr {
        assert_eq!(e.get("ph").and_then(parallax_service::Json::as_str), Some("X"));
        assert!(e.get("ts").is_some() && e.get("dur").is_some());
    }
}

#[test]
fn recent_traces_group_spans_by_request() {
    let _lock = trace_lock();
    trace::set_enabled(true);
    let circuit = parallax_workloads::benchmark("HLF").expect("HLF").circuit(2);
    let compiler = ParallaxCompiler::new(MachineSpec::quera_aquila_256(), CompilerConfig::quick(2));
    let id_a = trace::next_trace_id();
    {
        let _g = trace::trace_id_scope(id_a);
        let _ = compiler.compile(&circuit);
    }
    trace::set_enabled(false);

    let trees = trace::recent_traces(64);
    let tree = trees
        .iter()
        .find(|t| t.trace_id == id_a)
        .expect("the tagged compile's trace tree is retrievable");
    assert!(tree.events.iter().any(|e| e.name == "compile"));
    assert!(tree.events.iter().all(|e| e.trace_id == id_a));
}
