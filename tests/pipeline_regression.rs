//! Deterministic-seed regression tests for the full compiler pipeline:
//! equal seeds must reproduce bit-identical circuits, layouts, and
//! schedules, across repeated runs and across thread counts.

use parallax_circuit::{circuit_from_qasm_str, optimize};
use parallax_core::{compile_batch, CompilationResult, CompilerConfig, ParallaxCompiler};
use parallax_graphine::{GraphineLayout, PlacementConfig};
use parallax_hardware::MachineSpec;
use parallax_sim::parallax_schedule_fidelity;

fn assert_same_compilation(a: &CompilationResult, b: &CompilationResult, what: &str) {
    assert_eq!(a.schedule.gate_order(), b.schedule.gate_order(), "{what}: gate order");
    assert_eq!(a.home_positions, b.home_positions, "{what}: home positions");
    assert_eq!(a.aod_selection.selected, b.aod_selection.selected, "{what}: AOD selection");
    assert_eq!(a.schedule.stats.trap_changes, b.schedule.stats.trap_changes, "{what}: traps");
    assert_eq!(a.interaction_radius_um, b.interaction_radius_um, "{what}: radius");
}

#[test]
fn workload_generators_are_seed_deterministic() {
    for bench in parallax_workloads::all_benchmarks() {
        if bench.qubits > 32 {
            continue;
        }
        let a = bench.circuit(7);
        let b = bench.circuit(7);
        assert_eq!(a.gates(), b.gates(), "{} regenerated differently", bench.name);
        assert_eq!(a.cz_count(), b.cz_count());
    }
}

#[test]
fn placement_is_seed_deterministic() {
    let bench = parallax_workloads::benchmark("QAOA").unwrap();
    let circuit = bench.circuit(3);
    let cfg = PlacementConfig::quick(3);
    let a = GraphineLayout::generate(&circuit, &cfg);
    let b = GraphineLayout::generate(&circuit, &cfg);
    assert_eq!(a, b, "identical seeds must give identical layouts");
}

#[test]
fn compilation_is_seed_deterministic() {
    let machine = MachineSpec::quera_aquila_256();
    for name in ["GCM", "ADD", "QEC"] {
        let bench = parallax_workloads::benchmark(name).unwrap();
        let circuit = optimize(&bench.circuit(5));
        let compile = || ParallaxCompiler::new(machine, CompilerConfig::quick(5)).compile(&circuit);
        assert_same_compilation(&compile(), &compile(), name);
    }
}

#[test]
fn batch_compilation_matches_sequential_at_any_thread_count() {
    let machine = MachineSpec::quera_aquila_256();
    let jobs: Vec<_> = ["GCM", "QAOA", "ADD", "WST"]
        .iter()
        .map(|n| optimize(&parallax_workloads::benchmark(n).unwrap().circuit(2)))
        .collect();
    let cfg = CompilerConfig::quick(2);
    let sequential = compile_batch(&jobs, machine, &cfg, 1);
    for threads in [2usize, 4, 8] {
        let parallel = compile_batch(&jobs, machine, &cfg, threads);
        assert_eq!(sequential.len(), parallel.len());
        for (i, (a, b)) in sequential.iter().zip(&parallel).enumerate() {
            assert_same_compilation(a, b, &format!("job {i} at {threads} threads"));
        }
    }
}

#[test]
fn qasm_text_pipeline_is_reproducible_and_exact() {
    // A second front-end program (distinct from end_to_end's) through the
    // whole stack: parse, transpile, optimize, compile, verify, repeat.
    let src = "OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg a[3];\nqreg b[2];\ncreg m[5];\n\
               h a[0];\ncx a[0],a[1];\nt a[1];\ncx a[1],b[0];\nswap a[2],b[1];\n\
               ccx a[0],a[1],b[0];\nmeasure a -> m;\n";
    let circuit = optimize(&circuit_from_qasm_str(src).unwrap());
    assert_eq!(circuit.num_qubits(), 5);
    let machine = MachineSpec::quera_aquila_256();
    let run = || ParallaxCompiler::new(machine, CompilerConfig::quick(9)).compile(&circuit);
    let (r1, r2) = (run(), run());
    assert_same_compilation(&r1, &r2, "qasm pipeline");
    assert_eq!(r1.schedule.stats.swap_count, 0);
    assert_eq!(r1.cz_count(), circuit.cz_count());
    let f = parallax_schedule_fidelity(&circuit, &r1, 77);
    assert!((f - 1.0).abs() < 1e-9, "fidelity {f}");
}

#[test]
fn distinct_seeds_explore_distinct_placements() {
    // Sanity check that the seed actually steers the stochastic stages:
    // annealed layouts for different seeds should not coincide.
    let bench = parallax_workloads::benchmark("QAOA").unwrap();
    let circuit = bench.circuit(0);
    let a = GraphineLayout::generate(&circuit, &PlacementConfig::quick(1));
    let b = GraphineLayout::generate(&circuit, &PlacementConfig::quick(2));
    assert_ne!(a.positions, b.positions, "seeds 1 and 2 gave identical layouts");
}
