//! Umbrella suite for the multi-mover scheduling ablation (ROADMAP
//! item 3): the default path is pinned byte-for-byte against pre-ablation
//! golden digests, and every multi-mover schedule is proven safe three
//! independent ways — replayed through the hardware constraint checker,
//! checked pairwise against the all-pairs corridor oracle, and
//! statevector-diffed against the single-mover compile of the same
//! circuit.
//!
//! The oracle-backed replays live in a `#[cfg(debug_assertions)]` module
//! because `moves_conflict_naive` is only compiled into debug builds of
//! `parallax-core` (the `docs/DATA_LAYOUT.md` oracle convention);
//! digests, hardware-checker replays, and simulator equivalence run in
//! every profile.

use parallax_circuit::{Circuit, DependencyDag, SlackTable};
use parallax_core::scheduler::Schedule;
use parallax_core::{
    discretize, schedule_gates, select_aod_qubits, CompilerConfig, ParallaxCompiler,
};
use parallax_graphine::GraphineLayout;
use parallax_hardware::{AodMove, MachineSpec, Point};
use parallax_service::schedule_digest;
use parallax_sim::parallax_schedule_fidelity;
use parallax_testkit::{arb_hcz_circuit, large_machine, lcg_circuit};
use proptest::prelude::*;

/// Pre-PR golden digests of default-mode compiles: (bench, machine,
/// config seed) -> `schedule_digest`. Captured at commit `ab79a41`, the
/// commit *before* the multi-mover ablation landed; the default path
/// must keep reproducing them byte-for-byte (the digest covers home
/// positions, AOD selection, and every layer's gates and moves).
const GOLDEN: &[(&str, &str, u64, u64)] = &[
    ("GCM", "quera-256", 0, 0x24732dab815cee19),
    ("GCM", "quera-256", 1, 0x17c104ee1374b4bc),
    ("GCM", "quera-256", 2, 0x470e823253f01f93),
    ("QAOA", "quera-256", 0, 0x999e477f05dbcde9),
    ("QAOA", "quera-256", 1, 0x735c0bcd9c8024f6),
    ("QAOA", "quera-256", 2, 0x9d2533dadf19bcc5),
    ("SECA", "quera-256", 0, 0xa41d050d53e794ab),
    ("SECA", "quera-256", 1, 0x458fb2f1a4275316),
    ("SECA", "quera-256", 2, 0xde5cd8c4f09f867a),
    ("GCM", "atom-1225", 0, 0x5e80af6ddc1a4a30),
    ("GCM", "atom-1225", 1, 0x8133ca6d7c6ee6d1),
    ("GCM", "atom-1225", 2, 0xaff13c970a7344e6),
    ("QAOA", "atom-1225", 0, 0xa53eaa21ac224e78),
    ("QAOA", "atom-1225", 1, 0x95935f130af3a68f),
    ("QAOA", "atom-1225", 2, 0x947b8bca0abd0944),
    ("SECA", "atom-1225", 0, 0xd99b4012425ad6ea),
    ("SECA", "atom-1225", 1, 0x167d81f093d3442b),
    ("SECA", "atom-1225", 2, 0x4c2b438d1b37c84f),
];

fn machine(label: &str) -> MachineSpec {
    match label {
        "quera-256" => MachineSpec::quera_aquila_256(),
        "atom-1225" => MachineSpec::atom_1225(),
        other => panic!("unknown machine label {other}"),
    }
}

fn bench_circuit(name: &str, seed: u64) -> Circuit {
    parallax_workloads::benchmark(name).expect("Table III benchmark").circuit(seed)
}

/// The tentpole's "off by default" contract: with the ablation flag off,
/// the compiler reproduces the pre-PR schedules bit for bit, on both
/// Table II machines, across seeds.
#[test]
fn default_mode_matches_pre_pr_golden_digests() {
    for &(bench, label, seed, want) in GOLDEN {
        let c = bench_circuit(bench, seed);
        let r = ParallaxCompiler::new(machine(label), CompilerConfig::quick(seed)).compile(&c);
        assert_eq!(
            schedule_digest(&r),
            want,
            "{bench} on {label} at seed {seed} no longer matches the pre-PR schedule"
        );
        assert!(!r.schedule.stats.multi_mover.enabled, "default compile ran the ablation path");
    }
}

/// Compile `c` both ways through the public pipeline (shared placement
/// and discretization, so the modes differ only in the scheduler),
/// returning the schedules plus a copy of the layer-start array state
/// for replay.
fn compile_both(
    c: &Circuit,
    spec: MachineSpec,
    single_cfg: CompilerConfig,
) -> (Schedule, Schedule, parallax_core::DiscretizedLayout) {
    let multi_cfg = single_cfg.clone().with_multi_mover();
    let layout = GraphineLayout::generate(c, &single_cfg.placement);
    let mut d_single = discretize(c, &layout, spec);
    let mut d_multi = d_single.clone();
    let sel_single = select_aod_qubits(c, &mut d_single, &single_cfg);
    let sel_multi = select_aod_qubits(c, &mut d_multi, &multi_cfg);
    let replay = d_multi.clone();
    let s_single = schedule_gates(c, &mut d_single, &sel_single, &single_cfg);
    let s_multi = schedule_gates(c, &mut d_multi, &sel_multi, &multi_cfg);
    (s_single, s_multi, replay)
}

/// Replay a multi-mover schedule layer by layer against the hardware
/// constraint checker: every layer's concatenated move batch must pass
/// `check_aod_moves` from the layer-start configuration (committed plans
/// touch disjoint qubits, so the batch is exactly what the hardware
/// executes), and the home-return batch must replay cleanly too.
fn replay_through_hardware_checks(s: &Schedule, replay: &mut parallax_core::DiscretizedLayout) {
    let n = replay.array.spec().num_sites();
    let mut homes: Vec<Option<Point>> = vec![None; n];
    for (i, layer) in s.layers.iter().enumerate() {
        assert_eq!(
            layer.mover_plans.iter().map(|&k| k as usize).sum::<usize>(),
            layer.moves.len(),
            "layer {i}: mover_plans boundaries must partition the move list"
        );
        assert!(
            replay.array.check_aod_moves(&layer.moves).is_empty(),
            "layer {i}: committed move batch violates hardware constraints on replay"
        );
        for m in &layer.moves {
            if homes[m.q as usize].is_none() {
                homes[m.q as usize] = Some(replay.array.position(m.q));
            }
        }
        replay.array.apply_aod_moves(&layer.moves).unwrap();
        let returns: Vec<AodMove> = layer
            .moves
            .iter()
            .filter_map(|m| {
                let home = homes[m.q as usize].unwrap();
                (replay.array.position(m.q).distance(&home) > 1e-9).then_some(AodMove {
                    q: m.q,
                    x: home.x,
                    y: home.y,
                })
            })
            .collect();
        assert!(replay.array.check_aod_moves(&returns).is_empty(), "layer {i}: home return");
        replay.array.apply_aod_moves(&returns).unwrap();
    }
}

/// The benchmark-harness config for `bench` at `seed` — the exact arm
/// the `experiments multi-mover` table compiles, so the layer-count
/// comparison below pins the table's improvements, not a different
/// placement's.
fn experiments_config(bench: &str, seed: u64) -> CompilerConfig {
    let qubits = parallax_workloads::benchmark(bench).unwrap().qubits;
    CompilerConfig {
        seed,
        placement: parallax_bench::placement_for(qubits, seed),
        ..Default::default()
    }
}

/// Simulable Table III workloads (≤ 24 qubits, within the statevector
/// cap) through the full safety battery: the multi-mover schedule
/// executes every gate once, replays through the hardware checker, takes
/// no more layers than the default under the benchmark-harness config
/// (these workloads are the `experiments multi-mover` improvements:
/// GCM −14.3%, SECA −12.5% at seed 0), and is statevector-equivalent to
/// the single-mover compile of the same circuit.
#[test]
fn multi_mover_schedules_are_statevector_equivalent_to_default() {
    for bench in ["ADV", "SECA", "GCM"] {
        for seed in 0u64..3 {
            let c = bench_circuit(bench, seed);
            let cfg = experiments_config(bench, seed);
            let (s_single, s_multi, mut replay) =
                compile_both(&c, MachineSpec::quera_aquila_256(), cfg.clone());
            assert!(s_multi.stats.multi_mover.enabled);
            let mut order = s_multi.gate_order();
            order.sort_unstable();
            assert_eq!(order, (0..c.len()).collect::<Vec<_>>(), "{bench}/{seed}: gate coverage");
            assert!(
                s_multi.stats.layer_count <= s_single.stats.layer_count,
                "{bench}/{seed}: multi {} > single {}",
                s_multi.stats.layer_count,
                s_single.stats.layer_count
            );
            replay_through_hardware_checks(&s_multi, &mut replay);
            // Equivalence through the simulator: both orders implement the
            // circuit exactly (the compiler preserves unitaries, so the
            // fidelity tolerance is numerical-roundoff-only).
            let spec = MachineSpec::quera_aquila_256();
            let compile = |cfg: CompilerConfig| ParallaxCompiler::new(spec, cfg).compile(&c);
            let single = compile(cfg.clone());
            let multi = compile(cfg.with_multi_mover());
            for (what, r) in [("single", &single), ("multi", &multi)] {
                let f = parallax_schedule_fidelity(&c, r, seed ^ 0x5eed);
                assert!((f - 1.0).abs() < 1e-7, "{bench}/{seed} {what}: fidelity {f}");
            }
        }
    }
}

/// The home-return epoch-skip fix, pinned: on the fully CZ-serialized
/// TFIM-128 compile (5121 layers), the batched return pass drops 94,532
/// already-home entries via the position-epoch check. The count is
/// deterministic (seeded placement, seeded schedule); a change means the
/// skip condition — not just its bookkeeping — changed.
#[test]
fn home_return_epoch_skips_are_pinned_on_tfim_128() {
    let c = bench_circuit("TFIM", 0);
    let r = ParallaxCompiler::new(MachineSpec::quera_aquila_256(), CompilerConfig::quick(0))
        .compile(&c);
    assert_eq!(r.schedule.stats.layer_count, 5121);
    assert_eq!(r.schedule.stats.home_return_skips, 94_532);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Slack-table invariants on random dependency DAGs: ASAP never
    /// exceeds ALAP, slack is exactly their gap, criticality is exactly
    /// zero slack, and the zero-slack gates form a critical path — every
    /// ASAP level of the DAG contains at least one critical gate.
    #[test]
    fn slack_table_invariants(c in arb_hcz_circuit(8, 1, 60)) {
        let dag = DependencyDag::build(&c);
        let slack = SlackTable::compute(&dag);
        prop_assert_eq!(slack.len(), c.len());
        let depth = slack.depth();
        let mut level_has_critical = vec![false; depth as usize];
        for g in 0..c.len() {
            prop_assert!(slack.asap(g) <= slack.alap(g), "gate {}: asap > alap", g);
            prop_assert_eq!(slack.slack(g), slack.alap(g) - slack.asap(g));
            prop_assert_eq!(slack.is_critical(g), slack.slack(g) == 0);
            prop_assert!(slack.alap(g) < depth, "gate {}: alap beyond depth", g);
            if slack.is_critical(g) {
                level_has_critical[slack.asap(g) as usize] = true;
            }
        }
        prop_assert!(
            level_has_critical.iter().all(|&b| b),
            "some ASAP level has no zero-slack gate: no critical path through it"
        );
    }

    /// Random circuits over the large-machine strategies (synthetic grids
    /// up to 4096 sites and Atom-1225): the multi-mover schedule executes
    /// every gate exactly once, its committed batches replay through the
    /// hardware checker, and the layer count never *materially* exceeds
    /// the default's. Strict `multi <= single` is not a theorem — the two
    /// modes order blockade contention differently (ALAP deadlines vs
    /// shuffled ejection), and the `experiments multi-mover` table shows
    /// QEC drifting +2.6% at one seed — so the bound here is a gross-
    /// regression tripwire, not a monotonicity claim.
    #[test]
    fn multi_mover_layer_count_stays_near_single(
        (spec, qubits) in large_machine(),
        seed in 0u64..1 << 12,
    ) {
        let c = lcg_circuit(qubits as u32, 40, seed);
        let (s_single, s_multi, mut replay) =
            compile_both(&c, spec, CompilerConfig::quick(seed));
        let mut order = s_multi.gate_order();
        order.sort_unstable();
        prop_assert_eq!(order, (0..c.len()).collect::<Vec<_>>());
        let (single, multi) = (s_single.stats.layer_count, s_multi.stats.layer_count);
        prop_assert!(
            multi <= single + single / 10 + 2,
            "multi {} far exceeds single {}",
            multi,
            single
        );
        replay_through_hardware_checks(&s_multi, &mut replay);
    }
}

/// Oracle-backed replays: only debug builds of `parallax-core` compile
/// `moves_conflict_naive`, so these diffs are debug-only (like the
/// scheduler-oracle comparisons in `tests/differential.rs`).
#[cfg(debug_assertions)]
mod oracle {
    use super::*;
    use parallax_core::{moves_conflict_naive, Corridor};

    /// Reconstruct each layer's per-plan corridor sets from the
    /// layer-start configuration and assert pairwise disjointness with
    /// the all-pairs oracle at the machine's transit clearance.
    fn assert_plans_pairwise_disjoint(
        s: &Schedule,
        replay: &mut parallax_core::DiscretizedLayout,
    ) -> usize {
        let clearance = replay.array.spec().min_separation_um;
        let n = replay.array.spec().num_sites();
        let mut homes: Vec<Option<Point>> = vec![None; n];
        let mut batched = 0usize;
        for layer in &s.layers {
            let mut plans: Vec<Vec<Corridor>> = Vec::new();
            let mut offset = 0usize;
            for &k in &layer.mover_plans {
                plans.push(
                    layer.moves[offset..offset + k as usize]
                        .iter()
                        .map(|m| Corridor {
                            q: m.q,
                            from: replay.array.position(m.q),
                            to: Point::new(m.x, m.y),
                        })
                        .collect(),
                );
                offset += k as usize;
            }
            for i in 0..plans.len() {
                for j in i + 1..plans.len() {
                    assert!(
                        !moves_conflict_naive(&plans[i], &plans[j], clearance),
                        "plans {i} and {j} of a layer interfere per the all-pairs oracle"
                    );
                }
            }
            if plans.len() > 1 {
                batched += 1;
            }
            for m in &layer.moves {
                if homes[m.q as usize].is_none() {
                    homes[m.q as usize] = Some(replay.array.position(m.q));
                }
            }
            replay.array.apply_aod_moves(&layer.moves).unwrap();
            let returns: Vec<AodMove> = layer
                .moves
                .iter()
                .filter_map(|m| {
                    let home = homes[m.q as usize].unwrap();
                    (replay.array.position(m.q).distance(&home) > 1e-9).then_some(AodMove {
                        q: m.q,
                        x: home.x,
                        y: home.y,
                    })
                })
                .collect();
            replay.array.apply_aod_moves(&returns).unwrap();
        }
        batched
    }

    /// Table III workloads that batch at seed 0 (GCM posts −14.3% layers,
    /// QV −21.5%): every committed layer's plan set is pairwise
    /// non-conflicting per the naive oracle, and at least one layer
    /// actually batches, so the sweep proves more than vacuous truth.
    #[test]
    fn committed_plans_survive_the_all_pairs_oracle() {
        let mut batched = 0usize;
        for bench in ["GCM", "QV"] {
            let c = super::bench_circuit(bench, 0);
            let cfg = super::experiments_config(bench, 0);
            let (_, s_multi, mut replay) = compile_both(&c, MachineSpec::quera_aquila_256(), cfg);
            batched += assert_plans_pairwise_disjoint(&s_multi, &mut replay);
        }
        assert!(batched > 0, "no workload batched two plans in any layer");
    }
}
